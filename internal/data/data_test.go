package data

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateClassificationDeterministic(t *testing.T) {
	spec := ClassificationSpec{Name: "t", Dim: 100, Train: 50, Test: 10, NNZ: 5, Noise: 0.1, Seed: 7}
	a, err := GenerateClassification(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClassification(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != 50 || len(a.Test) != 10 {
		t.Fatalf("sizes: %d/%d", len(a.Train), len(a.Test))
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatalf("generation not deterministic at %d", i)
		}
		for j := range a.Train[i].Features.Idx {
			if a.Train[i].Features.Idx[j] != b.Train[i].Features.Idx[j] {
				t.Fatalf("indices differ at example %d", i)
			}
		}
	}
}

func TestGenerateClassificationShape(t *testing.T) {
	spec := ClassificationSpec{Name: "t", Dim: 1000, Train: 200, Test: 0, NNZ: 20, Noise: 0, Seed: 1}
	ds, err := GenerateClassification(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range ds.Train {
		if ex.Features.NNZ() != 20 {
			t.Fatalf("example %d has %d nnz, want 20", i, ex.Features.NNZ())
		}
		if ex.Label != 1 && ex.Label != -1 {
			t.Fatalf("example %d label %v", i, ex.Label)
		}
		// Indices sorted and in range.
		for j, idx := range ex.Features.Idx {
			if idx < 0 || int(idx) >= spec.Dim {
				t.Fatalf("index %d out of range", idx)
			}
			if j > 0 && ex.Features.Idx[j-1] >= idx {
				t.Fatalf("indices not strictly increasing: %v", ex.Features.Idx)
			}
		}
		// Normalized features.
		if n := ex.Features.Norm2(); n < 0.99 || n > 1.01 {
			t.Fatalf("example %d norm %v, want ~1", i, n)
		}
	}
	st := ds.Stats()
	if st.AvgNNZ != 20 || st.Train != 200 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PositiveFrac <= 0.1 || st.PositiveFrac >= 0.9 {
		t.Fatalf("classes badly imbalanced: %v", st.PositiveFrac)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []ClassificationSpec{
		{Dim: 0, Train: 1, NNZ: 1},
		{Dim: 10, Train: 0, NNZ: 1},
		{Dim: 10, Train: 1, NNZ: 11},
		{Dim: 10, Train: 1, NNZ: 1, Noise: 0.7},
	}
	for i, s := range bad {
		if _, err := GenerateClassification(s); err == nil {
			t.Fatalf("spec %d should fail: %+v", i, s)
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	spec := ClassificationSpec{Name: "t", Dim: 50, Train: 100, NNZ: 3, Seed: 2}
	a, _ := GenerateClassification(spec)
	b, _ := GenerateClassification(spec)
	a.Shuffle(9)
	b.Shuffle(9)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label ||
			a.Train[i].Features.Idx[0] != b.Train[i].Features.Idx[0] {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestShapes(t *testing.T) {
	for _, sh := range Shapes() {
		spec, err := sh.Spec(1)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%v: invalid default spec: %v", sh, err)
		}
		s2, _ := sh.Spec(3)
		if s2.Train != 3*spec.Train {
			t.Fatalf("%v: scale did not multiply examples", sh)
		}
		if s2.Dim != spec.Dim {
			t.Fatalf("%v: scale must not change dimensionality", sh)
		}
	}
	if _, err := Shape("bogus").Spec(1); err == nil {
		t.Fatal("unknown shape should fail")
	}
	// Relative ordering from the paper: webspam has the largest model,
	// splice the largest example count.
	web, _ := WebspamShape.Spec(1)
	spl, _ := SpliceShape.Spec(1)
	rcv, _ := RCV1Shape.Spec(1)
	if web.Dim <= rcv.Dim || web.Dim <= spl.Dim {
		t.Fatal("webspam should be the high-dimensional workload")
	}
	if spl.Train <= rcv.Train {
		t.Fatal("splice should be the big-data workload")
	}
}

func TestShardExactCover(t *testing.T) {
	f := func(nRaw, totalRaw uint16) bool {
		n := int(nRaw % 1000)
		total := int(totalRaw%20) + 1
		covered := 0
		prevHi := 0
		for r := 0; r < total; r++ {
			lo, hi := Shard(n, r, total)
			if lo != prevHi {
				return false // gaps or overlap
			}
			if hi < lo {
				return false
			}
			if hi-lo > n/total+1 {
				return false // imbalance
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShardPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shard with rank >= total should panic")
		}
	}()
	Shard(10, 3, 3)
}

func TestShardOverRedistributes(t *testing.T) {
	// 4 ranks, rank 2 died: survivors 0,1,3 split the data three ways.
	lo, hi, err := ShardOver(90, 3, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 60 || hi != 90 {
		t.Fatalf("rank 3 shard = [%d,%d)", lo, hi)
	}
	if _, _, err := ShardOver(90, 2, []int{0, 1, 3}); err == nil {
		t.Fatal("dead rank should not get a shard")
	}
	if _, _, err := ShardOver(90, 1, []int{1, 0, 3}); err == nil {
		t.Fatal("unsorted alive list should fail")
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	spec := ClassificationSpec{Name: "t", Dim: 100, Train: 30, NNZ: 4, Seed: 3}
	ds, _ := GenerateClassification(spec)
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, ds.Train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, "t", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Train) != 30 {
		t.Fatalf("round trip lost examples: %d", len(back.Train))
	}
	for i := range ds.Train {
		a, b := ds.Train[i], back.Train[i]
		if a.Label != b.Label || a.Features.NNZ() != b.Features.NNZ() {
			t.Fatalf("example %d mismatch", i)
		}
		for j := range a.Features.Idx {
			if a.Features.Idx[j] != b.Features.Idx[j] {
				t.Fatalf("example %d index mismatch", i)
			}
		}
	}
}

func TestLibSVMParsing(t *testing.T) {
	in := "+1 1:0.5 3:2 # comment\n-1 2:1\n\n"
	ds, err := ReadLibSVM(strings.NewReader(in), "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 2 {
		t.Fatalf("parsed %d examples", len(ds.Train))
	}
	if ds.Dim != 3 { // max index 3 (1-based) → dim 3
		t.Fatalf("inferred dim = %d", ds.Dim)
	}
	if ds.Train[0].Features.Idx[0] != 0 { // 1-based → 0-based
		t.Fatal("index base conversion wrong")
	}
	for _, bad := range []string{"x 1:1\n", "1 0:1\n", "1 1:x\n", "1 nocolon\n", "1 2:1 # ok\n1 9:1\n"} {
		if _, err := ReadLibSVM(strings.NewReader(bad), "x", 5); err == nil {
			t.Fatalf("bad input %q accepted", bad)
		}
	}
}

func TestGenerateRatings(t *testing.T) {
	spec := NetflixSpec(1)
	spec.Train = 5000
	spec.Test = 500
	ds, err := GenerateRatings(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 5000 || len(ds.Test) != 500 {
		t.Fatalf("sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	for _, r := range ds.Train {
		if r.User < 0 || int(r.User) >= ds.Users || r.Item < 0 || int(r.Item) >= ds.Items {
			t.Fatalf("rating out of range: %+v", r)
		}
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("score out of [1,5]: %v", r.Score)
		}
	}
	ds.SortByItem()
	for i := 1; i < len(ds.Train); i++ {
		if ds.Train[i-1].Item > ds.Train[i].Item {
			t.Fatal("SortByItem did not sort")
		}
	}
	if _, err := GenerateRatings(RatingsSpec{}); err == nil {
		t.Fatal("empty ratings spec should fail")
	}
}

func TestGenerateClicks(t *testing.T) {
	spec := KDD12Spec(1)
	spec.Train = 3000
	spec.Test = 500
	spec.Dim = 500
	ds, err := GenerateClicks(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 3000 {
		t.Fatalf("train size %d", len(ds.Train))
	}
	pos := 0
	for _, ex := range ds.Train {
		if ex.Label == 1 {
			pos++
		} else if ex.Label != -1 {
			t.Fatalf("bad label %v", ex.Label)
		}
		if ex.Features.NNZ() != spec.NNZ {
			t.Fatalf("nnz %d", ex.Features.NNZ())
		}
	}
	ctr := float64(pos) / float64(len(ds.Train))
	if ctr < spec.CTR-0.12 || ctr > spec.CTR+0.12 {
		t.Fatalf("CTR = %v, want ≈ %v", ctr, spec.CTR)
	}
	if _, err := GenerateClicks(ClickSpec{}); err == nil {
		t.Fatal("empty click spec should fail")
	}
}

func TestReadLibSVMShard(t *testing.T) {
	spec := ClassificationSpec{Name: "t", Dim: 20, Train: 10, NNZ: 3, Seed: 4}
	ds, _ := GenerateClassification(spec)
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, ds.Train); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	total := 0
	for rank := 0; rank < 3; rank++ {
		shard, err := ReadLibSVMShard(strings.NewReader(raw), "t", 20, rank, 3)
		if err != nil {
			t.Fatal(err)
		}
		total += len(shard.Train)
		// Round-robin assignment: shard examples are originals rank, rank+3, …
		for j, ex := range shard.Train {
			orig := ds.Train[rank+3*j]
			if ex.Label != orig.Label || ex.Features.NNZ() != orig.Features.NNZ() {
				t.Fatalf("rank %d shard example %d mismatched", rank, j)
			}
		}
	}
	if total != 10 {
		t.Fatalf("shards cover %d examples, want 10", total)
	}
	if _, err := ReadLibSVMShard(strings.NewReader(raw), "t", 20, 3, 3); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
}
