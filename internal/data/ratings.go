package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Rating is one (user, item, score) observation — the matrix-factorization
// workload's training atom (the paper uses the Netflix dataset).
type Rating struct {
	User, Item int32
	Score      float64
}

// RatingsDataset holds a sparse sample of a Users×Items rating matrix.
type RatingsDataset struct {
	Name         string
	Users, Items int
	// Rank is the latent dimensionality of the generating factors; a
	// factorization of at least this rank can fit Train to the noise floor.
	Rank        int
	Train, Test []Rating
}

// RatingsSpec parameterizes a synthetic low-rank ratings matrix: hidden
// factors U (Users×Rank) and V (Items×Rank) are sampled and observations
// are U·Vᵀ entries plus Gaussian noise, clamped to [1,5] like star ratings.
type RatingsSpec struct {
	Name         string
	Users, Items int
	Rank         int
	Train, Test  int     // observation counts
	Noise        float64 // observation noise stddev
	Seed         int64
}

// NetflixSpec returns the scaled-down Netflix-shaped spec. The real dataset
// is 480k users × 17.7k movies with 100M ratings; scale=1 gives
// 2,000×500 with 100k observations, preserving the tall-skinny aspect and
// ~1% observed density.
func NetflixSpec(scale int) RatingsSpec {
	if scale <= 0 {
		scale = 1
	}
	return RatingsSpec{
		Name:  "netflix",
		Users: 2000, Items: 500,
		Rank:  8,
		Train: 100000 * scale, Test: 10000,
		Noise: 0.3,
		Seed:  201,
	}
}

// GenerateRatings builds the dataset described by spec, deterministically
// in the seed.
func GenerateRatings(spec RatingsSpec) (*RatingsDataset, error) {
	if spec.Users <= 0 || spec.Items <= 0 || spec.Rank <= 0 || spec.Train <= 0 {
		return nil, fmt.Errorf("data: ratings spec needs positive Users/Items/Rank/Train: %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	u := randomFactors(rng, spec.Users, spec.Rank)
	v := randomFactors(rng, spec.Items, spec.Rank)
	gen := func(n int) []Rating {
		out := make([]Rating, 0, n)
		for i := 0; i < n; i++ {
			user := rng.Intn(spec.Users)
			item := rng.Intn(spec.Items)
			var score float64
			for k := 0; k < spec.Rank; k++ {
				score += u[user][k] * v[item][k]
			}
			score = 3 + score + rng.NormFloat64()*spec.Noise
			if score < 1 {
				score = 1
			}
			if score > 5 {
				score = 5
			}
			out = append(out, Rating{User: int32(user), Item: int32(item), Score: score})
		}
		return out
	}
	return &RatingsDataset{
		Name:  spec.Name,
		Users: spec.Users, Items: spec.Items,
		Rank:  spec.Rank,
		Train: gen(spec.Train), Test: gen(spec.Test),
	}, nil
}

func randomFactors(rng *rand.Rand, n, rank int) [][]float64 {
	out := make([][]float64, n)
	// Entry std 1.5/√rank gives the latent term u·v a std of ≈0.8: strong
	// enough that predicting the global mean leaves ~3× the noise floor on
	// the table, so factorization quality actually shows in the RMSE.
	scale := 1.5 / math.Sqrt(float64(rank))
	for i := range out {
		row := make([]float64, rank)
		for k := range row {
			row[k] = rng.NormFloat64() * scale
		}
		out[i] = row
	}
	return out
}

// SortByItem orders the training ratings by item then user. The paper
// sorts the Netflix input by movie and splits across ranks so concurrent
// Hogwild-style updates rarely collide on the same item factor.
func (d *RatingsDataset) SortByItem() {
	sort.Slice(d.Train, func(i, j int) bool {
		a, b := d.Train[i], d.Train[j]
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		return a.User < b.User
	})
}

// Shuffle permutes the training ratings deterministically in the seed.
func (d *RatingsDataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Train), func(i, j int) {
		d.Train[i], d.Train[j] = d.Train[j], d.Train[i]
	})
}
