package compress

import "fmt"

// LinkSignals is the slice of per-link counters the adaptive controller
// reads. *fabric.Stats satisfies it; tests supply fakes.
type LinkSignals interface {
	// LinkBytes returns payload bytes sent from→to.
	LinkBytes(from, to int) uint64
	// LinkModelNs returns modeled wire nanoseconds accumulated from→to.
	LinkModelNs(from, to int) uint64
	// FailedWritesLink returns ErrUnreachable failures from→to.
	FailedWritesLink(from, to int) uint64
	// WindowStallsLink returns credit-exhausted send stalls from→to.
	WindowStallsLink(from, to int) uint64
	// InjectedDropsLink returns chaos-injected transient drops from→to.
	InjectedDropsLink(from, to int) uint64
	// InjectedJitterLink returns chaos-injected extra wire ns from→to.
	InjectedJitterLink(from, to int) uint64
}

// congestionFactor is how much more expensive (modeled ns per byte) a link
// must be than the cheapest active link this interval to count as
// saturated.
const congestionFactor = 3.0

// Controller adapts each outgoing link's compression ratio from observed
// LinkSignals deltas. Every AdaptEvery-th Tick it snapshots each link's
// counters, diffs them against the previous snapshot, and re-picks:
//
//   - pressure (chaos drops, failed writes, window stalls, injected jitter,
//     or ns/byte ≥ congestionFactor × the cheapest link's) → halve the
//     ratio, floored at MinRatio: a blacked-out or saturated link ships the
//     fewest coordinates, and error feedback carries the rest until it
//     heals;
//   - no pressure → relax by 1.5×, capped at the base Ratio, so a healed
//     link drifts back to near-lossless.
//
// The controller is owned by one sender goroutine, like State.
type Controller struct {
	sig   LinkSignals
	self  int
	base  float64
	min   float64
	every int

	calls int
	links map[int]*ctlLink

	adaptations uint64
	hardest     float64
	tightest    float64
}

// ctlLink is one outgoing link's ratio plus its last counter snapshot.
type ctlLink struct {
	ratio                                float64
	bytes, modelNs                       uint64
	failed, stalls, drops, jitNs, inited uint64
}

// ControllerPerf is the controller's accounting snapshot.
type ControllerPerf struct {
	// Adaptations counts ratio changes (tightening or relaxing).
	Adaptations uint64
	// HardestRatio is the smallest per-link ratio currently in force
	// (== the base ratio when every link is healthy or none exist).
	HardestRatio float64
	// TightestRatio is the smallest per-link ratio that was ever in
	// force — the adaptive peak. Unlike HardestRatio it survives
	// post-pressure relaxation, so an end-of-run harvest still shows
	// how hard a transient blackout squeezed its link.
	TightestRatio float64
}

// NewController builds an adaptive controller for rank self's outgoing
// links. opts must name a ratio-driven codec with Adapt set.
func NewController(opts Options, sig LinkSignals, self int) (*Controller, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if !o.Adapt {
		return nil, fmt.Errorf("compress: controller requires Adapt")
	}
	if sig == nil {
		return nil, fmt.Errorf("compress: controller requires link signals")
	}
	return &Controller{
		sig:      sig,
		self:     self,
		base:     o.Ratio,
		min:      o.MinRatio,
		every:    o.AdaptEvery,
		links:    make(map[int]*ctlLink),
		hardest:  o.Ratio,
		tightest: o.Ratio,
	}, nil
}

// snapshot records peer's current counters as ls's delta baseline.
func (c *Controller) snapshot(ls *ctlLink, peer int) {
	ls.bytes = c.sig.LinkBytes(c.self, peer)
	ls.modelNs = c.sig.LinkModelNs(c.self, peer)
	ls.failed = c.sig.FailedWritesLink(c.self, peer)
	ls.stalls = c.sig.WindowStallsLink(c.self, peer)
	ls.drops = c.sig.InjectedDropsLink(c.self, peer)
	ls.jitNs = c.sig.InjectedJitterLink(c.self, peer)
	ls.inited = 1
}

// Ratio returns the current compression ratio for the self→peer link.
func (c *Controller) Ratio(peer int) float64 {
	if ls := c.links[peer]; ls != nil {
		return ls.ratio
	}
	return c.base
}

// Tick is called once per scatter with the current destination set; every
// AdaptEvery-th call it re-picks each link's ratio from counter deltas.
func (c *Controller) Tick(peers []int) {
	c.calls++
	if c.calls%c.every != 0 {
		// Snapshot links on first sight even between re-picks: pressure
		// that lands before a link's first full interval must surface as
		// a delta at the next re-pick, not vanish into its baseline.
		// (Matters on slow scatter cadences — a wall-clock blackout can
		// come and go before the AdaptEvery-th scatter otherwise.)
		for _, peer := range peers {
			if peer == c.self || c.links[peer] != nil {
				continue
			}
			ls := &ctlLink{ratio: c.base}
			c.snapshot(ls, peer)
			c.links[peer] = ls
		}
		return
	}

	// Snapshot and diff each link, then find the cheapest ns/byte among
	// links that moved data this interval — the congestion baseline.
	type delta struct {
		ls        *ctlLink
		pressured bool
		nsPerByte float64
		bytes     uint64
		peer      int
	}
	deltas := make([]delta, 0, len(peers))
	cheapest := -1.0
	for _, peer := range peers {
		if peer == c.self {
			continue
		}
		ls := c.links[peer]
		if ls == nil {
			ls = &ctlLink{ratio: c.base}
			c.links[peer] = ls
		}
		bytes := c.sig.LinkBytes(c.self, peer)
		modelNs := c.sig.LinkModelNs(c.self, peer)
		failed := c.sig.FailedWritesLink(c.self, peer)
		stalls := c.sig.WindowStallsLink(c.self, peer)
		drops := c.sig.InjectedDropsLink(c.self, peer)
		jitNs := c.sig.InjectedJitterLink(c.self, peer)

		d := delta{ls: ls, peer: peer}
		if ls.inited != 0 {
			d.bytes = bytes - ls.bytes
			d.pressured = failed > ls.failed || stalls > ls.stalls ||
				drops > ls.drops || jitNs > ls.jitNs
			if d.bytes > 0 {
				d.nsPerByte = float64(modelNs-ls.modelNs) / float64(d.bytes)
				if cheapest < 0 || d.nsPerByte < cheapest {
					cheapest = d.nsPerByte
				}
			}
		}
		ls.bytes, ls.modelNs = bytes, modelNs
		ls.failed, ls.stalls, ls.drops, ls.jitNs = failed, stalls, drops, jitNs
		ls.inited = 1
		deltas = append(deltas, d)
	}

	for _, d := range deltas {
		pressured := d.pressured
		if !pressured && cheapest > 0 && d.bytes > 0 &&
			d.nsPerByte >= congestionFactor*cheapest {
			pressured = true
		}
		want := d.ls.ratio
		if pressured {
			want = max(d.ls.ratio/2, c.min)
		} else {
			want = min(d.ls.ratio*1.5, c.base)
		}
		if want != d.ls.ratio {
			d.ls.ratio = want
			c.adaptations++
		}
	}

	c.hardest = c.base
	for _, ls := range c.links {
		if ls.ratio < c.hardest {
			c.hardest = ls.ratio
		}
	}
	if c.hardest < c.tightest {
		c.tightest = c.hardest
	}
}

// DropPeer forgets peer's ratio and snapshot; a rejoined incarnation starts
// fresh at the base ratio.
func (c *Controller) DropPeer(peer int) { delete(c.links, peer) }

// Perf returns the controller's accounting snapshot.
func (c *Controller) Perf() ControllerPerf {
	return ControllerPerf{
		Adaptations:   c.adaptations,
		HardestRatio:  c.hardest,
		TightestRatio: c.tightest,
	}
}
