package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame wire format. Every compressed payload — a whole update or one
// gradient bucket's coordinate range — is one frame:
//
//	[0]   magic 0xC6
//	[1]   codec ID
//	[2:6] uint32 count — coordinates covered by this frame
//	[6:]  codec body (below)
//
// Codec bodies (coordinate indices are absolute; a frame for [lo, lo+count)
// is decoded knowing lo from the enclosing bucket header, or lo = 0 for a
// whole-vector frame):
//
//	none:   count float64s, little-endian.
//	topk:   uint32 k, then k × (uint32 idx, float64 val), idx strictly
//	        ascending within [lo, lo+count).
//	int8:   a run of 256-coordinate blocks aligned to absolute coordinate
//	        0 (the first and last blocks of a mid-vector range are
//	        partial). Each block: uint8 mode; mode 0 = quantized
//	        (int8 exponent e, then one int8 per coordinate, value q·2^e);
//	        mode 1 = raw (one float64 per coordinate — non-finite or
//	        astronomically large blocks pass through losslessly).
//	topk+int8 (hybrid): uint32 k, uint32 firstPos (the global selection
//	        position of the first pair — group boundaries are global, so a
//	        bucket's frame must say where in the selection it starts),
//	        then k pairs in 64-pair groups: at each group boundary a
//	        uint8 mode (+ int8 exponent when quantized), then per pair a
//	        uint32 idx and either an int8 q or a raw float64.
//
// Decoders reject truncated, oversized and structurally invalid bodies
// (bad magic, unknown codec, count mismatch, out-of-range or non-ascending
// indices) with errors — a corrupt frame must never panic or silently
// decode to garbage lengths.

const (
	frameMagic      = 0xC6
	frameHeaderSize = 6

	codecNoneID   byte = 0
	codecTopKID   byte = 1
	codecInt8ID   byte = 2
	codecHybridID byte = 3

	// BlockCoords is the int8 codec's quantization-block size: each
	// absolute-aligned block of this many coordinates shares one
	// power-of-two scale.
	BlockCoords = 256
	// GroupPairs is the hybrid codec's quantization-group size over the
	// selected pairs.
	GroupPairs = 64
)

// AppendFrame appends the complete frame (header + body) for coordinates
// [lo, hi) of a planned update to dst.
func AppendFrame(dst []byte, p *Plan, lo, hi int) []byte {
	dst = append(dst, frameMagic, p.codec.ID())
	dst = binary.LittleEndian.AppendUint32(dst, uint32(hi-lo))
	return p.codec.EncodeRange(dst, p, lo, hi)
}

// Decode decodes one frame covering exactly len(out) coordinates starting
// at absolute coordinate lo into out.
func Decode(out []float64, lo int, frame []byte) error {
	if len(frame) < frameHeaderSize {
		return fmt.Errorf("compress: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != frameMagic {
		return fmt.Errorf("compress: bad frame magic 0x%02X", frame[0])
	}
	c := byID(frame[1])
	if c == nil {
		return fmt.Errorf("compress: unknown codec ID %d", frame[1])
	}
	count := int(binary.LittleEndian.Uint32(frame[2:6]))
	if count != len(out) {
		return fmt.Errorf("compress: frame covers %d coords, want %d", count, len(out))
	}
	return c.DecodeRange(out, lo, frame[frameHeaderSize:])
}

// FrameCodec reports which registered codec a frame claims to carry
// (diagnostics; does not validate the body).
func FrameCodec(frame []byte) (Codec, error) {
	if len(frame) < frameHeaderSize {
		return nil, fmt.Errorf("compress: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != frameMagic {
		return nil, fmt.Errorf("compress: bad frame magic 0x%02X", frame[0])
	}
	c := byID(frame[1])
	if c == nil {
		return nil, fmt.Errorf("compress: unknown codec ID %d", frame[1])
	}
	return c, nil
}

// MaxFrameBytes bounds the frame size for an n-coordinate range under c.
func MaxFrameBytes(c Codec, n int) int {
	return frameHeaderSize + c.MaxBodyBytes(n)
}

// none — framing-only passthrough, the control arm of the codec registry.
type noneCodec struct{}

func (noneCodec) Name() string      { return "none" }
func (noneCodec) ID() byte          { return codecNoneID }
func (noneCodec) RatioDriven() bool { return false }

func (noneCodec) MaxBodyBytes(n int) int { return 8 * n }

func (noneCodec) Plan(p *Plan, acc []float64, ratio float64) {
	p.reset(noneCodec{}, len(acc))
	copy(p.Recon, acc)
}

func (noneCodec) EncodeRange(dst []byte, p *Plan, lo, hi int) []byte {
	for _, v := range p.Recon[lo:hi] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func (noneCodec) DecodeRange(out []float64, lo int, body []byte) error {
	if len(body) != 8*len(out) {
		return fmt.Errorf("compress: none body %d bytes, want %d", len(body), 8*len(out))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return nil
}

// topk — global top-k sparsification: ship the k largest-magnitude
// coordinates of the residual-corrected update, drop (and carry forward)
// the rest.
type topkCodec struct{}

func (topkCodec) Name() string      { return "topk" }
func (topkCodec) ID() byte          { return codecTopKID }
func (topkCodec) RatioDriven() bool { return true }

func (topkCodec) MaxBodyBytes(n int) int { return 4 + 12*n }

func (topkCodec) Plan(p *Plan, acc []float64, ratio float64) {
	p.reset(topkCodec{}, len(acc))
	p.selIdx = SelectTopK(acc, ratioK(ratio, len(acc)), p.selIdx)
	for i := range p.Recon {
		p.Recon[i] = 0
	}
	for _, ix := range p.selIdx {
		p.Recon[ix] = acc[ix]
	}
}

// selRange returns the selection positions [a, b) whose coordinates fall
// in [lo, hi). selIdx is ascending, so two binary searches suffice.
func selRange(selIdx []int32, lo, hi int) (a, b int) {
	a = lowerBound(selIdx, int32(lo))
	b = lowerBound(selIdx, int32(hi))
	return a, b
}

// lowerBound returns the first position in asc whose value is >= x.
func lowerBound(asc []int32, x int32) int {
	lo, hi := 0, len(asc)
	for lo < hi {
		mid := (lo + hi) / 2
		if asc[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (topkCodec) EncodeRange(dst []byte, p *Plan, lo, hi int) []byte {
	a, b := selRange(p.selIdx, lo, hi)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b-a))
	for _, ix := range p.selIdx[a:b] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ix))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Recon[ix]))
	}
	return dst
}

func (topkCodec) DecodeRange(out []float64, lo int, body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("compress: topk body too short (%d bytes)", len(body))
	}
	k := int(binary.LittleEndian.Uint32(body[0:4]))
	if k > len(out) || len(body) != 4+12*k {
		return fmt.Errorf("compress: topk body %d bytes with k=%d over %d coords", len(body), k, len(out))
	}
	for i := range out {
		out[i] = 0
	}
	off := 4
	prev := -1
	for i := 0; i < k; i++ {
		ix := int(binary.LittleEndian.Uint32(body[off:])) - lo
		val := math.Float64frombits(binary.LittleEndian.Uint64(body[off+4:]))
		off += 12
		if ix <= prev || ix >= len(out) {
			return fmt.Errorf("compress: topk index %d out of order or range (prev %d, count %d)", ix+lo, prev+lo, len(out))
		}
		prev = ix
		out[ix] = val
	}
	return nil
}

// int8 — linear quantization with a per-block power-of-two scale: every
// absolute-aligned block of BlockCoords coordinates ships one exponent and
// one int8 per coordinate (~7.8x), falling back to raw passthrough for
// blocks that cannot be quantized exactly.
type int8Codec struct{}

func (int8Codec) Name() string      { return "int8" }
func (int8Codec) ID() byte          { return codecInt8ID }
func (int8Codec) RatioDriven() bool { return false }

func (int8Codec) MaxBodyBytes(n int) int {
	blocks := n/BlockCoords + 2 // a range may start and end mid-block
	return 8*n + 2*blocks
}

func (int8Codec) Plan(p *Plan, acc []float64, ratio float64) {
	dim := len(acc)
	p.reset(int8Codec{}, dim)
	nBlocks := (dim + BlockCoords - 1) / BlockCoords
	p.exps = resizeI8(p.exps, nBlocks)
	p.raw = resizeBool(p.raw, nBlocks)
	p.q = resizeI8(p.q, dim)
	for b := 0; b < nBlocks; b++ {
		blo := b * BlockCoords
		bhi := min(blo+BlockCoords, dim)
		maxAbs, finite := blockMaxAbs(acc[blo:bhi])
		e, ok := pow2Exp(maxAbs)
		if !finite || !ok {
			p.raw[b] = true
			copy(p.Recon[blo:bhi], acc[blo:bhi])
			continue
		}
		p.raw[b] = false
		p.exps[b] = int8(e)
		for i := blo; i < bhi; i++ {
			p.q[i], p.Recon[i] = quantize(acc[i], e)
		}
	}
}

// blockMaxAbs returns the largest magnitude in vals and whether every
// entry is finite.
func blockMaxAbs(vals []float64) (maxAbs float64, finite bool) {
	finite = true
	for _, v := range vals {
		a := math.Abs(v)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs, finite
}

func (int8Codec) EncodeRange(dst []byte, p *Plan, lo, hi int) []byte {
	for s := lo; s < hi; {
		b := s / BlockCoords
		e := min(hi, (b+1)*BlockCoords)
		if p.raw[b] {
			dst = append(dst, 1)
			for _, v := range p.Recon[s:e] {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		} else {
			dst = append(dst, 0, byte(p.exps[b]))
			for _, q := range p.q[s:e] {
				dst = append(dst, byte(q))
			}
		}
		s = e
	}
	return dst
}

func (int8Codec) DecodeRange(out []float64, lo int, body []byte) error {
	off := 0
	for s := 0; s < len(out); {
		b := (lo + s) / BlockCoords
		e := min(len(out), (b+1)*BlockCoords-lo)
		cnt := e - s
		if off >= len(body) {
			return fmt.Errorf("compress: int8 body truncated at block %d", b)
		}
		mode := body[off]
		off++
		switch mode {
		case 1: // raw
			if off+8*cnt > len(body) {
				return fmt.Errorf("compress: int8 raw block %d truncated", b)
			}
			for i := 0; i < cnt; i++ {
				out[s+i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*i:]))
			}
			off += 8 * cnt
		case 0: // quantized
			if off+1+cnt > len(body) {
				return fmt.Errorf("compress: int8 quantized block %d truncated", b)
			}
			exp := int8(body[off])
			off++
			for i := 0; i < cnt; i++ {
				out[s+i] = dequantize(int8(body[off+i]), exp)
			}
			off += cnt
		default:
			return fmt.Errorf("compress: int8 block %d has unknown mode %d", b, mode)
		}
		s = e
	}
	if off != len(body) {
		return fmt.Errorf("compress: int8 body has %d trailing bytes", len(body)-off)
	}
	return nil
}

// hybrid — topk selection plus int8 quantization of the selected values
// (~5 bytes per shipped coordinate instead of 12): the selected pairs form
// global 64-pair groups, each sharing one power-of-two exponent.
type hybridCodec struct{}

func (hybridCodec) Name() string      { return "topk+int8" }
func (hybridCodec) ID() byte          { return codecHybridID }
func (hybridCodec) RatioDriven() bool { return true }

func (hybridCodec) MaxBodyBytes(n int) int {
	groups := n/GroupPairs + 2
	return 8 + 12*n + 2*groups // worst case: every group raw
}

func (hybridCodec) Plan(p *Plan, acc []float64, ratio float64) {
	dim := len(acc)
	p.reset(hybridCodec{}, dim)
	p.selIdx = SelectTopK(acc, ratioK(ratio, dim), p.selIdx)
	for i := range p.Recon {
		p.Recon[i] = 0
	}
	k := len(p.selIdx)
	nGroups := (k + GroupPairs - 1) / GroupPairs
	p.exps = resizeI8(p.exps, nGroups)
	p.raw = resizeBool(p.raw, nGroups)
	p.q = resizeI8(p.q, k)
	for g := 0; g < nGroups; g++ {
		glo := g * GroupPairs
		ghi := min(glo+GroupPairs, k)
		maxAbs, finite := 0.0, true
		for _, ix := range p.selIdx[glo:ghi] {
			a := math.Abs(acc[ix])
			if math.IsNaN(acc[ix]) || math.IsInf(acc[ix], 0) {
				finite = false
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		e, ok := pow2Exp(maxAbs)
		if !finite || !ok {
			p.raw[g] = true
			for _, ix := range p.selIdx[glo:ghi] {
				p.Recon[ix] = acc[ix]
			}
			continue
		}
		p.raw[g] = false
		p.exps[g] = int8(e)
		for pos := glo; pos < ghi; pos++ {
			ix := p.selIdx[pos]
			p.q[pos], p.Recon[ix] = quantize(acc[ix], e)
		}
	}
}

func (hybridCodec) EncodeRange(dst []byte, p *Plan, lo, hi int) []byte {
	a, b := selRange(p.selIdx, lo, hi)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b-a))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	for pos := a; pos < b; pos++ {
		g := pos / GroupPairs
		if pos == a || pos%GroupPairs == 0 {
			if p.raw[g] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0, byte(p.exps[g]))
			}
		}
		ix := p.selIdx[pos]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ix))
		if p.raw[g] {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Recon[ix]))
		} else {
			dst = append(dst, byte(p.q[pos]))
		}
	}
	return dst
}

func (hybridCodec) DecodeRange(out []float64, lo int, body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("compress: hybrid body too short (%d bytes)", len(body))
	}
	k := int(binary.LittleEndian.Uint32(body[0:4]))
	firstPos := int(binary.LittleEndian.Uint32(body[4:8]))
	if k > len(out) || firstPos < 0 {
		return fmt.Errorf("compress: hybrid body claims k=%d firstPos=%d over %d coords", k, firstPos, len(out))
	}
	for i := range out {
		out[i] = 0
	}
	off := 8
	prev := -1
	raw := false
	var exp int8
	for i := 0; i < k; i++ {
		pos := firstPos + i
		if i == 0 || pos%GroupPairs == 0 {
			if off >= len(body) {
				return fmt.Errorf("compress: hybrid group header truncated at pair %d", i)
			}
			switch body[off] {
			case 1:
				raw = true
				off++
			case 0:
				if off+2 > len(body) {
					return fmt.Errorf("compress: hybrid group exponent truncated at pair %d", i)
				}
				raw = false
				exp = int8(body[off+1])
				off += 2
			default:
				return fmt.Errorf("compress: hybrid group has unknown mode %d", body[off])
			}
		}
		need := 5
		if raw {
			need = 12
		}
		if off+need > len(body) {
			return fmt.Errorf("compress: hybrid pair %d truncated", i)
		}
		ix := int(binary.LittleEndian.Uint32(body[off:])) - lo
		if ix <= prev || ix >= len(out) {
			return fmt.Errorf("compress: hybrid index %d out of order or range (prev %d, count %d)", ix+lo, prev+lo, len(out))
		}
		prev = ix
		if raw {
			out[ix] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+4:]))
		} else {
			out[ix] = dequantize(int8(body[off+4]), exp)
		}
		off += need
	}
	if off != len(body) {
		return fmt.Errorf("compress: hybrid body has %d trailing bytes", len(body)-off)
	}
	return nil
}

// resizeI8 and resizeBool grow-or-reslice scratch without reallocating in
// steady state.
func resizeI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
