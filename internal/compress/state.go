package compress

import "math"

// State is one vector's compression state: a residual vector per
// destination link (error feedback), one reusable Plan, and wire-byte
// accounting. A State belongs to a single sender goroutine — vol already
// serializes scatters per vector — so it needs no locking.
type State struct {
	opts  Options
	codec Codec
	dim   int

	links map[int]*linkState
	plan  Plan
	acc   []float64 // residual-corrected update being planned
	cur   *linkState
	perf  Perf
}

// linkState is the per-destination residual.
type linkState struct {
	residual []float64
}

// Perf is the state's cumulative accounting, harvested per rank into
// trace counters.
type Perf struct {
	// BytesPre counts raw (uncompressed) bytes the compressed scatters
	// would have shipped: 8·dim per destination per update.
	BytesPre uint64
	// BytesPost counts frame bytes actually produced.
	BytesPost uint64
	// Frames counts frames produced.
	Frames uint64
}

// NewState validates opts and builds a State for dim-coordinate updates.
func NewState(opts Options, dim int) (*State, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	c, err := Lookup(o.Codec)
	if err != nil {
		return nil, err
	}
	return &State{
		opts:  o,
		codec: c,
		dim:   dim,
		links: make(map[int]*linkState),
		acc:   make([]float64, dim),
	}, nil
}

// Options returns the validated (defaults-filled) options.
func (s *State) Options() Options { return s.opts }

// Codec returns the state's codec.
func (s *State) Codec() Codec { return s.codec }

// MaxFrameBytes bounds the frame size for an n-coordinate range.
func (s *State) MaxFrameBytes(n int) int { return MaxFrameBytes(s.codec, n) }

// Begin starts one compressed update to peer: it forms the
// residual-corrected update acc = data + residual(peer), plans it at the
// given ratio, and stores the exact new residual acc − Recon. Subsequent
// EncodeRange calls slice the planned update until the next Begin.
//
// Conservation invariant (tested bitwise): after Begin,
// Recon[i] + residual[i] == data[i] + oldResidual[i] for every i — the
// quantizing codecs only use power-of-two scales, so the subtraction is
// exact (Sterbenz), and dropped coordinates carry their full value.
func (s *State) Begin(peer int, data []float64, ratio float64) {
	ls := s.links[peer]
	if ls == nil {
		ls = &linkState{residual: make([]float64, s.dim)}
		s.links[peer] = ls
	}
	for i, v := range data {
		s.acc[i] = v + ls.residual[i]
	}
	s.codec.Plan(&s.plan, s.acc, ratio)
	for i := range ls.residual {
		ls.residual[i] = s.acc[i] - s.plan.Recon[i]
	}
	s.cur = ls
	s.perf.BytesPre += uint64(8 * s.dim)
}

// EncodeRange appends the frame for coordinates [lo, hi) of the update
// begun by the last Begin call.
func (s *State) EncodeRange(dst []byte, lo, hi int) []byte {
	n := len(dst)
	dst = AppendFrame(dst, &s.plan, lo, hi)
	s.perf.BytesPost += uint64(len(dst) - n)
	s.perf.Frames++
	return dst
}

// Recon exposes the current plan's reconstruction (what every receiver of
// the update begun by the last Begin will decode).
func (s *State) Recon() []float64 { return s.plan.Recon }

// DropPeer evicts peer's residual. Called when a peer is confirmed dead or
// rejoins across an epoch bump: a rejoined incarnation starts from the
// transferred snapshot, so replaying mass dropped against its previous
// life would poison it.
func (s *State) DropPeer(peer int) { delete(s.links, peer) }

// Residual returns peer's residual vector (nil if the link has none), for
// tests and diagnostics.
func (s *State) Residual(peer int) []float64 {
	if ls := s.links[peer]; ls != nil {
		return ls.residual
	}
	return nil
}

// ResidualNorm returns the L1 norm of all per-link residuals — the total
// gradient mass currently deferred by error feedback. Non-finite entries
// are skipped so one Inf residual does not wipe the telemetry.
func (s *State) ResidualNorm() float64 {
	var sum float64
	for _, ls := range s.links {
		for _, v := range ls.residual {
			a := math.Abs(v)
			if !math.IsInf(a, 0) && !math.IsNaN(a) {
				sum += a
			}
		}
	}
	return sum
}

// Perf returns the cumulative accounting snapshot.
func (s *State) Perf() Perf { return s.perf }
