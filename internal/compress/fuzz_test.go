package compress

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCompressDecode mirrors the framed-stream codec's fuzz harness
// (fabric/stream FuzzFrameDecode) for compression frames. Invariants:
//
//  1. Decode never panics on arbitrary bytes; invalid input errors.
//  2. Exact framing: a valid frame with one byte removed or appended is
//     rejected — decoders consume the body completely or fail.
//  3. Value canonicity: any successfully decoded coordinate range, when
//     re-planned and re-encoded by the same codec, round-trips bit for bit
//     (decode == Recon), and the re-encode itself is deterministic.
func FuzzCompressDecode(f *testing.F) {
	seedData := [][]float64{
		{1, -2, 3, 0, 5.5, -6.25, 0, 8},
		{0, math.NaN(), math.Inf(1), 5e-324, -1e300, 127, 128, 0.5},
		make([]float64, 300),
	}
	for i := range seedData[2] {
		seedData[2][i] = float64(i%17) - 8
	}
	for _, data := range seedData {
		for _, name := range Names() {
			c, _ := Lookup(name)
			p := &Plan{}
			c.Plan(p, data, 0.4)
			f.Add(uint16(0), AppendFrame(nil, p, 0, len(data)))
			if len(data) > 4 {
				f.Add(uint16(2), AppendFrame(nil, p, 2, len(data)-1))
			}
		}
	}
	f.Add(uint16(0), []byte{})
	f.Add(uint16(9), []byte{frameMagic, codecTopKID, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, lo16 uint16, frame []byte) {
		lo := int(lo16)
		count := 64
		if len(frame) >= frameHeaderSize {
			if c := int(uint32(frame[2]) | uint32(frame[3])<<8 | uint32(frame[4])<<16 | uint32(frame[5])<<24); c <= 4096 {
				count = c
			}
		}
		out := make([]float64, count)
		if err := Decode(out, lo, frame); err != nil {
			return
		}

		// Exact framing: strict prefixes and extensions must fail.
		if err := Decode(out, lo, frame[:len(frame)-1]); err == nil {
			t.Fatalf("truncated frame accepted (%d bytes)", len(frame)-1)
		}
		if err := Decode(out, lo, append(append([]byte{}, frame...), 0)); err == nil {
			t.Fatal("extended frame accepted")
		}

		// Value canonicity of our own encoder over the decoded values.
		c := byID(frame[1])
		p := &Plan{}
		c.Plan(p, out, 1.0)
		re := AppendFrame(nil, p, 0, len(out))
		if !bytes.Equal(re, AppendFrame(nil, p, 0, len(out))) {
			t.Fatal("re-encode is nondeterministic")
		}
		out2 := make([]float64, len(out))
		if err := Decode(out2, 0, re); err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		for i := range out2 {
			if math.Float64bits(out2[i]) != math.Float64bits(p.Recon[i]) {
				t.Fatalf("coord %d: re-encoded decode %v != Recon %v", i, out2[i], p.Recon[i])
			}
		}
	})
}
