package compress

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// testVectors returns named gradient-like inputs covering the codecs'
// interesting regimes: dense noise, sparse spikes, ties, zeros,
// non-finite entries, denormals and huge magnitudes.
func testVectors() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	dense := make([]float64, 1000)
	for i := range dense {
		dense[i] = rng.NormFloat64()
	}
	spiky := make([]float64, 700)
	for i := 0; i < len(spiky); i += 13 {
		spiky[i] = float64(i%7-3) * 1e3
	}
	ties := make([]float64, 300)
	for i := range ties {
		ties[i] = math.Pow(-1, float64(i)) * 0.5
	}
	weird := []float64{
		0, math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, -5e-324,
		math.MaxFloat64, -math.MaxFloat64, 1, -1, 0.1, 127, 128, 1e300,
		math.SmallestNonzeroFloat64, 2, 4, 8, -0.25,
	}
	// Pad weird across several int8 blocks so non-finite and huge entries
	// land in different blocks than tame ones.
	weirdLong := make([]float64, 600)
	copy(weirdLong, weird)
	copy(weirdLong[300:], weird)
	for i := 30; i < 300; i++ {
		weirdLong[i] = rng.NormFloat64() * 1e-5
	}
	return map[string][]float64{
		"dense":  dense,
		"spiky":  spiky,
		"ties":   ties,
		"weird":  weirdLong,
		"zeros":  make([]float64, 257),
		"single": {3.5},
	}
}

// planAndDecodeWhole plans data and decodes the whole-vector frame.
func planAndDecodeWhole(t *testing.T, c Codec, data []float64, ratio float64) (*Plan, []float64) {
	t.Helper()
	p := &Plan{}
	c.Plan(p, data, ratio)
	frame := AppendFrame(nil, p, 0, len(data))
	out := make([]float64, len(data))
	if err := Decode(out, 0, frame); err != nil {
		t.Fatalf("decode whole frame: %v", err)
	}
	return p, out
}

// bitsEqual compares float slices bit for bit (NaN == NaN).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCodecRoundTrip: decoding a frame reproduces the plan's Recon bit for
// bit, for every codec and vector.
func TestCodecRoundTrip(t *testing.T) {
	for name, data := range testVectors() {
		for _, codec := range Names() {
			c, err := Lookup(codec)
			if err != nil {
				t.Fatal(err)
			}
			p, out := planAndDecodeWhole(t, c, data, 0.2)
			if !bitsEqual(out, p.Recon) {
				t.Errorf("%s/%s: decode != Recon", codec, name)
			}
		}
	}
}

// TestRangeSplitEquivalence: the union of per-range frames decodes to the
// same coordinates as the whole-vector frame, for any partition — the
// invariant that makes compressed gradient bucketing bitwise identical to
// unbucketed scatter.
func TestRangeSplitEquivalence(t *testing.T) {
	splits := [][]int{{1}, {7}, {64}, {100}, {256}, {255, 256, 257}, {300}}
	for name, data := range testVectors() {
		for _, codec := range Names() {
			c, _ := Lookup(codec)
			p, whole := planAndDecodeWhole(t, c, data, 0.2)
			for _, widths := range splits {
				got := make([]float64, len(data))
				for i := range got {
					got[i] = math.NaN() // catch un-written ranges
				}
				wi := 0
				for lo := 0; lo < len(data); {
					hi := min(lo+widths[wi%len(widths)], len(data))
					wi++
					frame := AppendFrame(nil, p, lo, hi)
					if err := Decode(got[lo:hi], lo, frame); err != nil {
						t.Fatalf("%s/%s widths %v: decode [%d,%d): %v", codec, name, widths, lo, hi, err)
					}
					lo = hi
				}
				if !bitsEqual(got, whole) {
					t.Errorf("%s/%s: split %v decodes differently from whole frame", codec, name, widths)
				}
			}
		}
	}
}

// TestConservationBitwise: for every codec, recon + residual == acc exactly
// — error feedback loses nothing, even on NaN/Inf/denormal/huge inputs.
func TestConservationBitwise(t *testing.T) {
	for name, data := range testVectors() {
		for _, codec := range Names() {
			c, _ := Lookup(codec)
			p := &Plan{}
			c.Plan(p, data, 0.15)
			for i := range data {
				recon := p.Recon[i]
				if math.IsNaN(data[i]) || math.IsInf(data[i], 0) {
					// Non-finite coordinates must ship verbatim: a
					// residual cannot represent them (x − x is NaN).
					if math.Float64bits(recon) != math.Float64bits(data[i]) {
						t.Errorf("%s/%s[%d]: non-finite %v reconstructed as %v", codec, name, i, data[i], recon)
					}
					continue
				}
				residual := data[i] - recon
				back := recon + residual
				if math.Float64bits(back) != math.Float64bits(data[i]) {
					t.Errorf("%s/%s[%d]: recon %v + residual %v = %v, want %v",
						codec, name, i, recon, residual, back, data[i])
				}
			}
		}
	}
}

// TestStateConservation drives State across iterations and checks that at
// every step Recon + newResidual == data + oldResidual bitwise.
func TestStateConservation(t *testing.T) {
	for _, codec := range Names() {
		st, err := NewState(Options{Codec: codec, Ratio: 0.1}, 128)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		data := make([]float64, 128)
		prevResidual := make([]float64, 128)
		for iter := 0; iter < 20; iter++ {
			for i := range data {
				data[i] = rng.NormFloat64()
			}
			st.Begin(3, data, 0.1)
			recon := st.Recon()
			residual := st.Residual(3)
			for i := range data {
				want := data[i] + prevResidual[i]
				got := recon[i] + residual[i]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s iter %d coord %d: recon+residual %v != data+prev %v", codec, iter, i, got, want)
				}
			}
			copy(prevResidual, residual)
		}
	}
}

// TestStateResidualCarriesMass: under topk, a coordinate that never makes
// the cut accumulates in the residual until it does ship.
func TestStateResidualCarriesMass(t *testing.T) {
	st, err := NewState(Options{Codec: "topk", Ratio: 0.25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// k = ceil(0.25*4) = 1: only the largest coordinate ships each round.
	data := []float64{10, 0.5, 0, 0}
	st.Begin(1, data, 0.25)
	if r := st.Residual(1); r[1] != 0.5 || r[0] != 0 {
		t.Fatalf("round 1 residual = %v, want [0 0.5 0 0]", r)
	}
	// Round 2: coordinate 1's residual (0.5) + new 0.5 = 1.0 still loses
	// to 10; by round 21 it has accumulated 10.5 and must win.
	for i := 0; i < 20; i++ {
		st.Begin(1, data, 0.25)
	}
	if r := st.Residual(1); r[1] != 0 {
		t.Fatalf("after 21 rounds coordinate 1 never shipped: residual %v", r)
	}
}

// TestStateDropPeer: eviction clears the residual; the next Begin starts a
// fresh link.
func TestStateDropPeer(t *testing.T) {
	st, _ := NewState(Options{Codec: "topk", Ratio: 0.25}, 4)
	st.Begin(2, []float64{8, 1, 0, 0}, 0.25)
	if st.Residual(2) == nil {
		t.Fatal("link 2 has no residual after Begin")
	}
	st.DropPeer(2)
	if st.Residual(2) != nil {
		t.Fatal("DropPeer left a residual behind")
	}
	st.Begin(2, []float64{0, 4, 0, 0}, 0.25)
	if r := st.Residual(2); r[1] != 0 {
		t.Fatalf("fresh link 2 residual = %v; the old residual leaked back", r)
	}
}

// TestStatePerfAccounting: BytesPre counts raw bytes, BytesPost the frames.
func TestStatePerfAccounting(t *testing.T) {
	st, _ := NewState(Options{Codec: "topk", Ratio: 0.5}, 100)
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i + 1)
	}
	st.Begin(0, data, 0.5)
	frame := st.EncodeRange(nil, 0, 100)
	p := st.Perf()
	if p.BytesPre != 800 {
		t.Errorf("BytesPre = %d, want 800", p.BytesPre)
	}
	if p.BytesPost != uint64(len(frame)) {
		t.Errorf("BytesPost = %d, want %d", p.BytesPost, len(frame))
	}
	if p.Frames != 1 {
		t.Errorf("Frames = %d, want 1", p.Frames)
	}
	if p.BytesPost >= p.BytesPre {
		t.Errorf("topk at ratio 0.5 did not compress: %d >= %d", p.BytesPost, p.BytesPre)
	}
}

// TestSelectTopK covers the edge cases the orphaned vol.TopK mishandled.
func TestSelectTopK(t *testing.T) {
	cases := []struct {
		name string
		data []float64
		k    int
		want []int32
	}{
		{"k zero", []float64{1, 2, 3}, 0, []int32{}},
		{"k negative", []float64{1, 2, 3}, -5, []int32{}},
		{"k equals dim", []float64{1, -2, 3}, 3, []int32{0, 1, 2}},
		{"k exceeds dim", []float64{1, -2, 3}, 99, []int32{0, 1, 2}},
		{"zeros never selected", []float64{0, 5, 0, -3}, 4, []int32{1, 3}},
		{"all zeros", []float64{0, 0, 0}, 2, []int32{}},
		{"ties break to lower index", []float64{2, -2, 2, -2}, 2, []int32{0, 1}},
		{"magnitude not sign", []float64{-10, 1, 9}, 2, []int32{0, 2}},
		{"NaN always selected", []float64{1, math.NaN(), 3, 2}, 2, []int32{1, 2}},
		{"Inf outranks finite", []float64{5, math.Inf(-1), 1}, 1, []int32{1}},
		{"NaN ties with Inf by index", []float64{math.Inf(1), math.NaN(), 100}, 2, []int32{0, 1}},
		{"empty data", []float64{}, 3, []int32{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SelectTopK(tc.data, tc.k, nil)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("SelectTopK(%v, %d) = %v, want %v", tc.data, tc.k, got, tc.want)
			}
		})
	}
}

func TestRatioK(t *testing.T) {
	cases := []struct {
		ratio float64
		n     int
		want  int
	}{
		{0.125, 1000, 125},
		{0.1, 7, 1},
		{1, 5, 5},
		{0.0001, 100, 1},
		{0.9999, 4, 4},
	}
	for _, tc := range cases {
		if got := ratioK(tc.ratio, tc.n); got != tc.want {
			t.Errorf("ratioK(%g, %d) = %d, want %d", tc.ratio, tc.n, got, tc.want)
		}
	}
}

// TestPow2Exp: the chosen scale always admits |q| <= 127 and is the
// smallest such power of two.
func TestPow2Exp(t *testing.T) {
	for _, maxAbs := range []float64{1e-300, 5e-324, 0.1, 1, 126.9, 127, 127.0001, 128, 1e10, 1e300} {
		e, ok := pow2Exp(maxAbs)
		if !ok {
			if maxAbs <= 127*math.Ldexp(1, maxExp) {
				t.Errorf("pow2Exp(%g) rejected a quantizable magnitude", maxAbs)
			}
			continue
		}
		if maxAbs > 127*math.Ldexp(1, e) {
			t.Errorf("pow2Exp(%g) = %d: 127·2^e = %g < maxAbs", maxAbs, e, 127*math.Ldexp(1, e))
		}
		if e > minExp && maxAbs <= 127*math.Ldexp(1, e-1) {
			t.Errorf("pow2Exp(%g) = %d not minimal", maxAbs, e)
		}
	}
	if _, ok := pow2Exp(math.NaN()); ok {
		t.Error("pow2Exp(NaN) accepted")
	}
	if _, ok := pow2Exp(math.Inf(1)); ok {
		t.Error("pow2Exp(+Inf) accepted")
	}
	if _, ok := pow2Exp(math.MaxFloat64); ok {
		t.Error("pow2Exp(MaxFloat64) accepted (exceeds 127·2^127)")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"topk defaults", Options{Codec: "topk"}, false},
		{"hybrid adaptive", Options{Codec: "hybrid", Adapt: true}, false},
		{"int8 fixed", Options{Codec: "int8"}, false},
		{"none", Options{Codec: "none"}, false},
		{"empty codec", Options{}, true},
		{"unknown codec", Options{Codec: "zstd"}, true},
		{"ratio too high", Options{Codec: "topk", Ratio: 1.5}, true},
		{"ratio negative", Options{Codec: "topk", Ratio: -0.1}, true},
		{"ratio NaN", Options{Codec: "topk", Ratio: math.NaN()}, true},
		{"adapt on int8", Options{Codec: "int8", Adapt: true}, true},
		{"adapt on none", Options{Codec: "none", Adapt: true}, true},
		{"min above ratio", Options{Codec: "topk", Ratio: 0.1, MinRatio: 0.5}, true},
		{"negative AdaptEvery", Options{Codec: "topk", AdaptEvery: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// fakeSignals is a settable LinkSignals for controller tests.
type fakeSignals struct {
	bytes, modelNs, failed, stalls, drops, jitNs map[int]uint64
}

func newFakeSignals() *fakeSignals {
	return &fakeSignals{
		bytes: map[int]uint64{}, modelNs: map[int]uint64{},
		failed: map[int]uint64{}, stalls: map[int]uint64{},
		drops: map[int]uint64{}, jitNs: map[int]uint64{},
	}
}

func (f *fakeSignals) LinkBytes(from, to int) uint64          { return f.bytes[to] }
func (f *fakeSignals) LinkModelNs(from, to int) uint64        { return f.modelNs[to] }
func (f *fakeSignals) FailedWritesLink(from, to int) uint64   { return f.failed[to] }
func (f *fakeSignals) WindowStallsLink(from, to int) uint64   { return f.stalls[to] }
func (f *fakeSignals) InjectedDropsLink(from, to int) uint64  { return f.drops[to] }
func (f *fakeSignals) InjectedJitterLink(from, to int) uint64 { return f.jitNs[to] }

// tickInterval advances the controller one full adapt interval.
func tickInterval(c *Controller, peers []int, every int) {
	for i := 0; i < every; i++ {
		c.Tick(peers)
	}
}

// TestControllerEarlyPressure: pressure that lands inside a link's FIRST
// adapt interval must still tighten it. The first Tick snapshots the
// baseline, so a blackout that comes and goes before the AdaptEvery-th
// scatter surfaces as a delta at the first re-pick instead of vanishing
// into initialization — the regime of wall-clock chaos on slow scatter
// cadences (maltrun -chaos with a large cb).
func TestControllerEarlyPressure(t *testing.T) {
	sig := newFakeSignals()
	opts := Options{Codec: "topk", Ratio: 0.4, MinRatio: 0.05, Adapt: true, AdaptEvery: 8}
	c, err := NewController(opts, sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	peers := []int{1}
	c.Tick(peers) // scatter 1 snapshots the link's baseline
	sig.drops[1] += 3
	for i := 0; i < 7; i++ { // scatters 2..8; 8 re-picks
		c.Tick(peers)
	}
	if got := c.Ratio(1); got != 0.2 {
		t.Errorf("ratio after first-interval drops = %g, want 0.2", got)
	}
	if p := c.Perf(); p.TightestRatio != 0.2 {
		t.Errorf("TightestRatio = %g, want 0.2", p.TightestRatio)
	}
}

// TestControllerTightensAndRelaxes: chaos drops on one link halve its ratio
// down to the floor; once the pressure stops the ratio climbs back to base.
func TestControllerTightensAndRelaxes(t *testing.T) {
	sig := newFakeSignals()
	opts := Options{Codec: "topk", Ratio: 0.4, MinRatio: 0.05, Adapt: true, AdaptEvery: 2}
	c, err := NewController(opts, sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	peers := []int{1, 2}
	advance := func() {
		// Both links move the same traffic at the same cost, so the
		// congestion heuristic stays quiet; only explicit pressure
		// counters matter here.
		for _, p := range peers {
			sig.bytes[p] += 1000
			sig.modelNs[p] += 1000
		}
		tickInterval(c, peers, 2)
	}
	advance() // first interval only snapshots (inited=0 → no deltas)
	if got := c.Ratio(1); got != 0.4 {
		t.Fatalf("ratio after baseline interval = %g, want 0.4", got)
	}

	// Blackout on link 0→1: drops every interval.
	for i := 0; i < 4; i++ {
		sig.drops[1] += 5
		advance()
	}
	if got := c.Ratio(1); got != 0.05 {
		t.Errorf("pressured link ratio = %g, want floor 0.05", got)
	}
	if got := c.Ratio(2); got != 0.4 {
		t.Errorf("healthy link ratio = %g, want base 0.4", got)
	}
	if p := c.Perf(); p.HardestRatio != 0.05 || p.Adaptations == 0 {
		t.Errorf("Perf = %+v, want hardest 0.05 and adaptations > 0", p)
	}

	// Blackout lifts: the link relaxes back to base.
	for i := 0; i < 8; i++ {
		advance()
	}
	if got := c.Ratio(1); got != 0.4 {
		t.Errorf("healed link ratio = %g, want base 0.4", got)
	}
	if p := c.Perf(); p.HardestRatio != 0.4 {
		t.Errorf("hardest after heal = %g, want 0.4", p.HardestRatio)
	}
	// The peak is not erased by relaxation: an end-of-run harvest still
	// shows how hard the blackout squeezed the link.
	if p := c.Perf(); p.TightestRatio != 0.05 {
		t.Errorf("tightest after heal = %g, want floor 0.05", p.TightestRatio)
	}
}

// TestControllerCongestion: a link whose modeled ns/byte is far above the
// cheapest link's tightens even without chaos counters.
func TestControllerCongestion(t *testing.T) {
	sig := newFakeSignals()
	c, err := NewController(Options{Codec: "hybrid", Ratio: 0.4, MinRatio: 0.1, Adapt: true, AdaptEvery: 1}, sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	peers := []int{1, 2}
	advance := func(slowFactor uint64) {
		sig.bytes[1] += 1000
		sig.modelNs[1] += 1000
		sig.bytes[2] += 1000
		sig.modelNs[2] += 1000 * slowFactor
		tickInterval(c, peers, 1)
	}
	advance(10) // baseline snapshot
	for i := 0; i < 3; i++ {
		advance(10)
	}
	if got := c.Ratio(2); got != 0.1 {
		t.Errorf("congested link ratio = %g, want floor 0.1", got)
	}
	if got := c.Ratio(1); got != 0.4 {
		t.Errorf("cheap link ratio = %g, want base 0.4", got)
	}
}

// TestControllerDropPeer: eviction resets the link to the base ratio.
func TestControllerDropPeer(t *testing.T) {
	sig := newFakeSignals()
	c, _ := NewController(Options{Codec: "topk", Ratio: 0.4, MinRatio: 0.05, Adapt: true, AdaptEvery: 1}, sig, 0)
	peers := []int{1}
	c.Tick(peers) // baseline
	for i := 0; i < 5; i++ {
		sig.drops[1]++
		c.Tick(peers)
	}
	if got := c.Ratio(1); got == 0.4 {
		t.Fatal("link never tightened under drops")
	}
	c.DropPeer(1)
	if got := c.Ratio(1); got != 0.4 {
		t.Errorf("ratio after DropPeer = %g, want base 0.4", got)
	}
}

// TestControllerRejectsBadOptions: Adapt-less or invalid options fail.
func TestControllerRejectsBadOptions(t *testing.T) {
	sig := newFakeSignals()
	if _, err := NewController(Options{Codec: "topk"}, sig, 0); err == nil {
		t.Error("controller accepted Adapt=false")
	}
	if _, err := NewController(Options{Codec: "int8", Adapt: true}, sig, 0); err == nil {
		t.Error("controller accepted a non-ratio-driven codec")
	}
	if _, err := NewController(Options{Codec: "topk", Adapt: true}, nil, 0); err == nil {
		t.Error("controller accepted nil signals")
	}
}

// TestDecodeRejectsCorruption: structurally invalid frames error rather
// than panic or decode silently.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := []float64{1, -2, 3, 0, 5.5, -6.25, 0, 8}
	out := make([]float64, len(data))
	for _, codec := range Names() {
		c, _ := Lookup(codec)
		p := &Plan{}
		c.Plan(p, data, 0.5)
		frame := AppendFrame(nil, p, 0, len(data))

		if err := Decode(out, 0, frame[:len(frame)-1]); err == nil {
			t.Errorf("%s: truncated frame accepted", codec)
		}
		if err := Decode(out, 0, append(append([]byte{}, frame...), 0)); err == nil {
			t.Errorf("%s: oversized frame accepted", codec)
		}
		bad := append([]byte{}, frame...)
		bad[0] ^= 0xFF
		if err := Decode(out, 0, bad); err == nil {
			t.Errorf("%s: bad magic accepted", codec)
		}
		bad = append([]byte{}, frame...)
		bad[1] = 0x7E
		if err := Decode(out, 0, bad); err == nil {
			t.Errorf("%s: unknown codec ID accepted", codec)
		}
		bad = append([]byte{}, frame...)
		bad[2]++
		if err := Decode(out, 0, bad); err == nil {
			t.Errorf("%s: count mismatch accepted", codec)
		}
		if err := Decode(out, 0, frame[:3]); err == nil {
			t.Errorf("%s: short header accepted", codec)
		}
	}
}

// TestMaxBodyBytes: real bodies never exceed the advertised bound.
func TestMaxBodyBytes(t *testing.T) {
	for name, data := range testVectors() {
		for _, codec := range Names() {
			c, _ := Lookup(codec)
			p := &Plan{}
			c.Plan(p, data, 1.0) // worst case: ship everything
			for _, span := range [][2]int{{0, len(data)}, {0, min(5, len(data))}, {len(data) / 2, len(data)}} {
				lo, hi := span[0], span[1]
				body := c.EncodeRange(nil, p, lo, hi)
				if len(body) > c.MaxBodyBytes(hi-lo) {
					t.Errorf("%s/%s [%d,%d): body %d > bound %d", codec, name, lo, hi, len(body), c.MaxBodyBytes(hi-lo))
				}
			}
		}
	}
}

// TestCompressionRatios documents the headline wire savings on a dense
// gradient: every lossy codec beats 4x at the default ratio.
func TestCompressionRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	raw := 8 * len(data)
	for codec, wantAtLeast := range map[string]float64{"topk": 4, "int8": 7, "hybrid": 10} {
		c, _ := Lookup(codec)
		p := &Plan{}
		c.Plan(p, data, DefaultRatio)
		frame := AppendFrame(nil, p, 0, len(data))
		ratio := float64(raw) / float64(len(frame))
		if ratio < wantAtLeast {
			t.Errorf("%s: %d → %d bytes = %.1fx, want ≥ %.0fx", codec, raw, len(frame), ratio, wantAtLeast)
		}
	}
}
