// Package compress is MALT's gradient-compression subsystem: it shrinks the
// wire form of dense scattered updates (top-k sparsification, int8 linear
// quantization, or both) while a per-destination error-feedback residual
// carries the dropped mass into the next update, so compression loses
// bandwidth, not gradient. The design follows ASAP's framing (PAPERS.md):
// approximation is a first-class, tunable knob of the data-parallel runtime,
// not an ad-hoc trainer hack.
//
// Three pieces compose:
//
//   - A Codec registry (none, topk, int8, hybrid). A codec Plans a whole
//     residual-corrected update once — fixing the exact reconstruction the
//     receivers will decode — and then EncodeRange slices any coordinate
//     range of that plan into a self-describing frame. Global planning is
//     what keeps compressed gradient bucketing bitwise identical to the
//     unbucketed path: the union of the per-bucket frames is exactly the
//     whole-vector frame's content, for any bucket size.
//
//   - A per-destination State (one residual vector per link). Every scale
//     the quantizing codecs use is a power of two chosen so |q| <= 127,
//     which makes q·2^e exact and — by the Sterbenz lemma — makes
//     residual = acc − recon exact too: recon + residual equals the
//     residual-corrected gradient bit for bit, every iteration, for every
//     codec. Conservation is a testable invariant, not an approximation.
//
//   - An adaptive Controller that re-picks each link's compression ratio
//     every few scatters from observed fabric.Stats deltas (chaos drops,
//     failed writes, window stalls, injected jitter, modeled ns/byte): a
//     blacked-out or saturated link compresses harder, a healthy link
//     relaxes back toward the configured base ratio.
package compress

import (
	"fmt"
	"math"
	"sort"
)

// Defaults for Options fields left zero.
const (
	// DefaultRatio is the target fraction of coordinates shipped by the
	// ratio-driven codecs (topk, hybrid) when Options.Ratio is 0.
	DefaultRatio = 0.125
	// DefaultAdaptEvery is the number of scatters between adaptive ratio
	// re-picks when Options.AdaptEvery is 0.
	DefaultAdaptEvery = 8
	// DefaultMinRatioDiv divides the base ratio to derive the adaptive
	// floor when Options.MinRatio is 0 (floor = Ratio/8).
	DefaultMinRatioDiv = 8
)

// Options selects and tunes a compression codec. The zero value disables
// compression entirely (Enabled() == false).
type Options struct {
	// Codec names the registered codec: "none", "topk", "int8" or
	// "hybrid". Empty disables compression.
	Codec string
	// Ratio is the target fraction of coordinates shipped per update for
	// the ratio-driven codecs (topk, hybrid), in (0, 1]. 0 means
	// DefaultRatio. The none and int8 codecs ignore it.
	Ratio float64
	// Adapt enables the per-link adaptive controller: each destination's
	// ratio is re-picked from observed fabric.Stats signals, tightening
	// toward MinRatio under link pressure and relaxing back toward Ratio
	// when the link is healthy. Requires a ratio-driven codec.
	Adapt bool
	// AdaptEvery is the number of scatters between adaptive re-picks
	// (0 = DefaultAdaptEvery).
	AdaptEvery int
	// MinRatio is the adaptive floor (0 = Ratio/DefaultMinRatioDiv).
	MinRatio float64
}

// Enabled reports whether the options name a codec at all.
func (o Options) Enabled() bool { return o.Codec != "" }

// withDefaults fills zero fields and validates the result.
func (o Options) withDefaults() (Options, error) {
	if !o.Enabled() {
		return o, fmt.Errorf("compress: no codec selected")
	}
	c, err := Lookup(o.Codec)
	if err != nil {
		return o, err
	}
	if o.Ratio == 0 {
		o.Ratio = DefaultRatio
	}
	if o.Ratio <= 0 || o.Ratio > 1 || math.IsNaN(o.Ratio) {
		return o, fmt.Errorf("compress: ratio must be in (0, 1], got %g", o.Ratio)
	}
	if o.AdaptEvery == 0 {
		o.AdaptEvery = DefaultAdaptEvery
	}
	if o.AdaptEvery < 0 {
		return o, fmt.Errorf("compress: AdaptEvery must be positive, got %d", o.AdaptEvery)
	}
	if o.MinRatio == 0 {
		o.MinRatio = o.Ratio / DefaultMinRatioDiv
	}
	if o.MinRatio <= 0 || o.MinRatio > o.Ratio || math.IsNaN(o.MinRatio) {
		return o, fmt.Errorf("compress: MinRatio must be in (0, Ratio], got %g (ratio %g)", o.MinRatio, o.Ratio)
	}
	if o.Adapt && !c.RatioDriven() {
		return o, fmt.Errorf("compress: adaptive ratios require a ratio-driven codec (topk or hybrid), not %q", o.Codec)
	}
	return o, nil
}

// Validate checks the options without building a State (flag validation).
func (o Options) Validate() error {
	_, err := o.withDefaults()
	return err
}

// Codec is one compression scheme. Implementations are stateless; all
// per-update storage lives in the Plan so one codec value serves every
// vector and destination.
type Codec interface {
	// Name is the registry key.
	Name() string
	// ID is the wire identifier carried in every frame header.
	ID() byte
	// RatioDriven reports whether the codec consumes the ratio knob
	// (topk, hybrid) — the adaptive controller only applies to these.
	RatioDriven() bool
	// MaxBodyBytes bounds the encoded body size for any n-coordinate
	// range at any ratio (segment sizing).
	MaxBodyBytes(n int) int
	// Plan analyzes the residual-corrected update acc at the given ratio,
	// filling p.Recon with the exact values receivers will reconstruct
	// and recording the codec's global decisions (selection set,
	// per-block exponents). Planning is global so that EncodeRange of any
	// partition of [0, dim) reconstructs identically to one whole-vector
	// frame.
	Plan(p *Plan, acc []float64, ratio float64)
	// EncodeRange appends the frame body for coordinates [lo, hi) of the
	// planned update to dst.
	EncodeRange(dst []byte, p *Plan, lo, hi int) []byte
	// DecodeRange decodes a body covering len(out) coordinates starting
	// at absolute coordinate lo into out. It must reject truncated,
	// oversized or structurally invalid bodies with an error, never a
	// panic, and must reproduce Plan's Recon for that range bit for bit.
	DecodeRange(out []float64, lo int, body []byte) error
}

// Plan is one planned (analyzed) update: the exact reconstruction plus the
// codec's global decisions, reusable across EncodeRange calls and across
// updates (buffers are recycled).
type Plan struct {
	// Recon is the dim-length reconstruction every receiver will decode;
	// the caller's residual update is acc − Recon.
	Recon []float64

	codec Codec
	// selIdx holds the globally selected coordinates, ascending
	// (topk, hybrid).
	selIdx []int32
	// exps and raw are per-block (int8: 256-coordinate blocks; hybrid:
	// 64-pair groups) power-of-two exponents and raw-passthrough flags.
	exps []int8
	raw  []bool
	// q holds quantized values (int8: per coordinate; hybrid: per
	// selected pair).
	q []int8
}

// reset prepares the plan for a dim-length update under codec c.
func (p *Plan) reset(c Codec, dim int) {
	p.codec = c
	if cap(p.Recon) < dim {
		p.Recon = make([]float64, dim)
	}
	p.Recon = p.Recon[:dim]
}

// Registry. Codecs are fixed at compile time; the map is read-only after
// package init.
var codecs = map[string]Codec{
	"none":   noneCodec{},
	"topk":   topkCodec{},
	"int8":   int8Codec{},
	"hybrid": hybridCodec{},
}

// Lookup resolves a codec by registry name.
func Lookup(name string) (Codec, error) {
	c, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q (have %v)", name, Names())
	}
	return c, nil
}

// Names lists the registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// byID resolves a codec from its wire identifier.
func byID(id byte) Codec {
	for _, c := range codecs {
		if c.ID() == id {
			return c
		}
	}
	return nil
}

// SelectTopK returns the indices of the k largest-magnitude nonzero entries
// of data, ascending. Non-finite entries (NaN, ±Inf) rank above every
// finite magnitude — they must ship, or error feedback would carry them
// forward forever — and ties break toward the lower index, so the selection
// is deterministic for any input. k is clamped to the number of nonzero
// entries (k <= 0 selects nothing; k >= that count selects them all). dst
// is reused when its capacity suffices.
func SelectTopK(data []float64, k int, dst []int32) []int32 {
	idx := dst[:0]
	if k <= 0 {
		return idx
	}
	for i, v := range data {
		if v != 0 { // true for NaN too (NaN != 0)
			idx = append(idx, int32(i))
		}
	}
	if len(idx) > k {
		sort.Slice(idx, func(a, b int) bool {
			ka, kb := selKey(data[idx[a]]), selKey(data[idx[b]])
			if ka != kb {
				return ka > kb
			}
			return idx[a] < idx[b]
		})
		idx = idx[:k]
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	}
	return idx
}

// selKey ranks a value for top-k selection: NaN sorts with +Inf (always
// selected), everything else by magnitude.
func selKey(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return math.Abs(v)
}

// ratioK converts a ship-fraction into a coordinate budget over n.
func ratioK(ratio float64, n int) int {
	k := int(math.Ceil(ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Power-of-two quantization. The int8 and hybrid codecs never use an
// arbitrary linear scale: the scale is 2^e with e chosen as the smallest
// exponent such that maxAbs <= 127·2^e. Dividing by a power of two is
// exact, q = round(v/2^e) fits an int8, and q·2^e is exact — so the
// residual v − q·2^e is computed without rounding (Sterbenz lemma when
// q != 0: v and q·2^e are within a factor of two; exactly v when q == 0).
// This is what makes error-feedback conservation bitwise, not approximate.
const (
	minExp = -128
	maxExp = 127
)

// pow2Exp returns the smallest exponent e in [minExp, maxExp] with
// maxAbs <= 127·2^e. ok is false when maxAbs is non-finite or too large to
// quantize exactly (the caller falls back to the raw passthrough mode).
func pow2Exp(maxAbs float64) (e int, ok bool) {
	if maxAbs == 0 {
		return minExp, true
	}
	if math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
		return 0, false
	}
	_, exp := math.Frexp(maxAbs) // maxAbs = f·2^exp, f in [0.5, 1)
	e = exp - 7                  // 127·2^(exp-7) = (127/128)·2^exp
	if maxAbs > 127*math.Ldexp(1, e) {
		e++
	}
	if e < minExp {
		e = minExp
	}
	if e > maxExp {
		return 0, false
	}
	return e, true
}

// quantize returns round(v/2^e) clamped to [-127, 127] and the exact
// reconstruction q·2^e. v must be finite. The reconstruction is computed
// from the int8 — not the pre-truncation float — so a value that rounds to
// -0 reconstructs as +0 on both sides of the wire.
func quantize(v float64, e int) (q int8, recon float64) {
	scale := math.Ldexp(1, e)
	qq := math.Round(v / scale)
	if qq > 127 {
		qq = 127
	} else if qq < -127 {
		qq = -127
	}
	q = int8(qq)
	return q, float64(q) * scale
}

// dequantize reproduces quantize's reconstruction on the receive side.
func dequantize(q int8, e int8) float64 {
	return float64(q) * math.Ldexp(1, int(e))
}
