package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Script from a compact spec string — the format the
// maltrun CLI's --chaos flag accepts. Clauses are ';'-separated:
//
//	flaky=P              every link drops each op with probability P
//	flaky=F-T:P          directed link F→T drops with probability P
//	jitter=P:M           every op straggles (cost ×M) with probability P
//	kill=R@T             rank R dies permanently at offset T
//	join=R@T             previously-killed rank R rejoins at offset T
//	restart=R@T          rank R dies and immediately rejoins at offset T
//	blackout=R@T+D       rank R's links fail transiently for [T, T+D)
//	straggler=R:M@T+D    rank R's links cost ×M for [T, T+D)
//	partition=A,B|C,D@T  split into groups {A,B} and {C,D} at offset T
//	heal@T               remove all partitions at offset T
//
// Offsets and durations use Go syntax ("300ms", "2s"). Example:
//
//	flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms
func Parse(spec string, seed int64) (*Script, error) {
	p := &parser{s: New(seed), blackouts: map[int][]window{}}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.clause(clause); err != nil {
			return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
		}
	}
	return p.s, nil
}

// parser accumulates cross-clause state so Parse can reject specs that are
// well-formed clause-by-clause but incoherent as a whole (e.g. two blackout
// windows on the same rank that overlap — the first Restore would end the
// second blackout early, silently weakening the experiment).
type parser struct {
	s         *Script
	blackouts map[int][]window
}

// window is a half-open interval [at, at+dur).
type window struct{ at, end time.Duration }

func (p *parser) clause(clause string) error {
	s := p.s
	// heal@T has no '=' payload.
	if rest, ok := strings.CutPrefix(clause, "heal@"); ok {
		at, err := time.ParseDuration(rest)
		if err != nil {
			return err
		}
		s.HealAt(at)
		return nil
	}
	key, val, ok := strings.Cut(clause, "=")
	if !ok {
		return fmt.Errorf("expected key=value or heal@T")
	}
	switch key {
	case "flaky":
		if link, prob, ok := strings.Cut(val, ":"); ok {
			from, to, err := parseLink(link)
			if err != nil {
				return err
			}
			p, err := parseProb(prob)
			if err != nil {
				return err
			}
			s.FlakyLink(from, to, p)
			return nil
		}
		p, err := parseProb(val)
		if err != nil {
			return err
		}
		s.FlakyAll(p)
		return nil
	case "jitter":
		probStr, multStr, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("jitter wants P:M")
		}
		p, err := parseProb(probStr)
		if err != nil {
			return err
		}
		m, err := strconv.ParseFloat(multStr, 64)
		if err != nil {
			return err
		}
		s.JitterAll(p, m)
		return nil
	case "kill":
		rankStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("kill wants R@T")
		}
		rank, err := parseRank(rankStr)
		if err != nil {
			return err
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return err
		}
		s.KillAt(at, rank)
		return nil
	case "join", "restart":
		rankStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("%s wants R@T", key)
		}
		rank, err := parseRank(rankStr)
		if err != nil {
			return err
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return err
		}
		if key == "join" {
			s.JoinAt(at, rank)
		} else {
			s.RestartAt(at, rank)
		}
		return nil
	case "blackout":
		rankStr, win, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("blackout wants R@T+D")
		}
		rank, err := parseRank(rankStr)
		if err != nil {
			return err
		}
		at, dur, err := parseWindow(win)
		if err != nil {
			return err
		}
		if err := p.addBlackout(rank, at, dur); err != nil {
			return err
		}
		s.BlackoutAt(at, dur, rank)
		return nil
	case "straggler":
		head, win, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("straggler wants R:M@T+D")
		}
		rankStr, multStr, ok := strings.Cut(head, ":")
		if !ok {
			return fmt.Errorf("straggler wants R:M@T+D")
		}
		rank, err := parseRank(rankStr)
		if err != nil {
			return err
		}
		mult, err := strconv.ParseFloat(multStr, 64)
		if err != nil {
			return err
		}
		at, dur, err := parseWindow(win)
		if err != nil {
			return err
		}
		s.StragglerAt(at, dur, rank, mult)
		return nil
	case "partition":
		groupsStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("partition wants A,B|C,D@T")
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return err
		}
		var groups [][]int
		for _, gs := range strings.Split(groupsStr, "|") {
			var g []int
			for _, rs := range strings.Split(gs, ",") {
				r, err := parseRank(strings.TrimSpace(rs))
				if err != nil {
					return err
				}
				g = append(g, r)
			}
			groups = append(groups, g)
		}
		s.PartitionAt(at, groups)
		return nil
	default:
		return fmt.Errorf("unknown clause kind %q", key)
	}
}

func parseLink(s string) (from, to int, err error) {
	fromStr, toStr, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("link wants F-T")
	}
	if from, err = parseRank(fromStr); err != nil {
		return 0, 0, err
	}
	if to, err = parseRank(toStr); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

// parseRank parses a node id. Parse does not know the cluster size, so it
// can only reject ids that are invalid for every cluster; membership in the
// actual rank range is checked when the script is applied to a fabric.
func parseRank(s string) (int, error) {
	r, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if r < 0 {
		return 0, fmt.Errorf("rank %d is negative", r)
	}
	return r, nil
}

// addBlackout records rank's blackout window, rejecting overlaps: the
// earlier window's Restore would cut the later one short, so an overlapping
// spec never runs the fault pattern it appears to describe.
func (p *parser) addBlackout(rank int, at, dur time.Duration) error {
	w := window{at: at, end: at + dur}
	for _, prev := range p.blackouts[rank] {
		if w.at < prev.end && prev.at < w.end {
			return fmt.Errorf("blackout [%v, %v) overlaps earlier blackout [%v, %v) on rank %d",
				w.at, w.end, prev.at, prev.end, rank)
		}
	}
	p.blackouts[rank] = append(p.blackouts[rank], w)
	return nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// parseWindow parses "T+D" into offset and duration.
func parseWindow(s string) (at, dur time.Duration, err error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("window wants T+D")
	}
	if at, err = time.ParseDuration(atStr); err != nil {
		return 0, 0, err
	}
	if dur, err = time.ParseDuration(durStr); err != nil {
		return 0, 0, err
	}
	if at < 0 {
		return 0, 0, fmt.Errorf("window offset %v is negative", at)
	}
	if dur <= 0 {
		return 0, 0, fmt.Errorf("window duration %v is not positive", dur)
	}
	return at, dur, nil
}
