package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Script from a compact spec string — the format the
// maltrun CLI's --chaos flag accepts. Clauses are ';'-separated:
//
//	flaky=P              every link drops each op with probability P
//	flaky=F-T:P          directed link F→T drops with probability P
//	jitter=P:M           every op straggles (cost ×M) with probability P
//	kill=R@T             rank R dies permanently at offset T
//	blackout=R@T+D       rank R's links fail transiently for [T, T+D)
//	straggler=R:M@T+D    rank R's links cost ×M for [T, T+D)
//	partition=A,B|C,D@T  split into groups {A,B} and {C,D} at offset T
//	heal@T               remove all partitions at offset T
//
// Offsets and durations use Go syntax ("300ms", "2s"). Example:
//
//	flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms
func Parse(spec string, seed int64) (*Script, error) {
	s := New(seed)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := parseClause(s, clause); err != nil {
			return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
		}
	}
	return s, nil
}

func parseClause(s *Script, clause string) error {
	// heal@T has no '=' payload.
	if rest, ok := strings.CutPrefix(clause, "heal@"); ok {
		at, err := time.ParseDuration(rest)
		if err != nil {
			return err
		}
		s.HealAt(at)
		return nil
	}
	key, val, ok := strings.Cut(clause, "=")
	if !ok {
		return fmt.Errorf("expected key=value or heal@T")
	}
	switch key {
	case "flaky":
		if link, prob, ok := strings.Cut(val, ":"); ok {
			from, to, err := parseLink(link)
			if err != nil {
				return err
			}
			p, err := parseProb(prob)
			if err != nil {
				return err
			}
			s.FlakyLink(from, to, p)
			return nil
		}
		p, err := parseProb(val)
		if err != nil {
			return err
		}
		s.FlakyAll(p)
		return nil
	case "jitter":
		probStr, multStr, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("jitter wants P:M")
		}
		p, err := parseProb(probStr)
		if err != nil {
			return err
		}
		m, err := strconv.ParseFloat(multStr, 64)
		if err != nil {
			return err
		}
		s.JitterAll(p, m)
		return nil
	case "kill":
		rankStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("kill wants R@T")
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return err
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return err
		}
		s.KillAt(at, rank)
		return nil
	case "blackout":
		rankStr, window, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("blackout wants R@T+D")
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return err
		}
		at, dur, err := parseWindow(window)
		if err != nil {
			return err
		}
		s.BlackoutAt(at, dur, rank)
		return nil
	case "straggler":
		head, window, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("straggler wants R:M@T+D")
		}
		rankStr, multStr, ok := strings.Cut(head, ":")
		if !ok {
			return fmt.Errorf("straggler wants R:M@T+D")
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return err
		}
		mult, err := strconv.ParseFloat(multStr, 64)
		if err != nil {
			return err
		}
		at, dur, err := parseWindow(window)
		if err != nil {
			return err
		}
		s.StragglerAt(at, dur, rank, mult)
		return nil
	case "partition":
		groupsStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("partition wants A,B|C,D@T")
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return err
		}
		var groups [][]int
		for _, gs := range strings.Split(groupsStr, "|") {
			var g []int
			for _, rs := range strings.Split(gs, ",") {
				r, err := strconv.Atoi(strings.TrimSpace(rs))
				if err != nil {
					return err
				}
				g = append(g, r)
			}
			groups = append(groups, g)
		}
		s.PartitionAt(at, groups)
		return nil
	default:
		return fmt.Errorf("unknown clause kind %q", key)
	}
}

func parseLink(s string) (from, to int, err error) {
	fromStr, toStr, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("link wants F-T")
	}
	if from, err = strconv.Atoi(fromStr); err != nil {
		return 0, 0, err
	}
	if to, err = strconv.Atoi(toStr); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// parseWindow parses "T+D" into offset and duration.
func parseWindow(s string) (at, dur time.Duration, err error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("window wants T+D")
	}
	if at, err = time.ParseDuration(atStr); err != nil {
		return 0, 0, err
	}
	if dur, err = time.ParseDuration(durStr); err != nil {
		return 0, 0, err
	}
	return at, dur, nil
}
