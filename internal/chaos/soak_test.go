// Soak test: SVM training under a hostile scripted network — a 5% per-link
// drop floor, a machine-wide blackout window, and one permanent mid-training
// kill — must converge to within 2% of the fault-free run's accuracy, with
// zero false death confirmations of live ranks and identical survivor views
// on every live rank afterwards.
package chaos_test

import (
	"testing"
	"time"

	"malt/internal/bench"
	"malt/internal/chaos"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/ml/svm"
)

func soakDS(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		// The 2,000-example test set keeps the accuracy estimate's noise well
		// under the 2% convergence criterion (binomial std ≈ 0.8% at p≈0.85).
		Name: "soak", Dim: 50, Train: 1200, Test: 2000, NNZ: 6, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func soakOpts(ds *data.Dataset) bench.SVMOpts {
	return bench.SVMOpts{
		DS: ds, Ranks: 4, CB: 50,
		Sync: consistency.ASP, Mode: bench.GradAvg,
		Epochs: 40, EvalEvery: 5,
		SVM: svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
		// A per-batch delay that dominates the (tiny) compute time pins the
		// scenario timeline to a stable fraction of the run even when the
		// race detector slows execution several-fold: 240 batches x 2 ms
		// ≈ 480 ms wall-clock minimum, so the blackout (~60 ms) and the
		// kill (~150 ms) land in the first third of training.
		Jitter: bench.JitterSpec{Base: 2 * time.Millisecond},
	}
}

// quiesce drives explicit probe/report rounds on every live rank until the
// strike counters settle: confirmations the training tail did not reach are
// reached here, as a long-running job's watchdog would.
func quiesce(f *fabric.Fabric, monitor func(rank int) *fault.Monitor) {
	for i := 0; i < fault.DefaultStrikes+1; i++ {
		for _, r := range f.AliveRanks() {
			m := monitor(r)
			var failed, healthy []int
			for p := 0; p < f.Ranks(); p++ {
				if p == r || !m.Alive(p) {
					continue
				}
				if f.Ping(r, p) != nil {
					failed = append(failed, p)
				} else {
					healthy = append(healthy, p)
				}
			}
			m.ReportReachable(healthy)
			m.ReportFailedWrites(failed)
		}
	}
}

func TestSoakSVMUnderHostileNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	ds := soakDS(t)

	// Fault-free reference run.
	clean, err := bench.RunSVM(soakOpts(ds))
	if err != nil {
		t.Fatal(err)
	}

	// Hostile run: 5% drop on every link the whole time, rank 1 dark for
	// [60 ms, 100 ms), rank 3 permanently dead at 150 ms.
	opts := soakOpts(ds)
	opts.Chaos = chaos.New(99).
		FlakyAll(0.05).
		BlackoutAt(60*time.Millisecond, 40*time.Millisecond, 1).
		KillAt(150*time.Millisecond, 3)
	res, err := bench.RunSVM(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The scripted events actually fired during training.
	if len(res.ChaosLog) != 3 {
		t.Fatalf("chaos log = %+v, want blackout on/off + kill", res.ChaosLog)
	}
	fab := res.Cluster.Fabric()
	if fab.Alive(3) {
		t.Fatal("scripted kill did not land")
	}
	if fab.Stats().InjectedDrops() == 0 {
		t.Fatal("no transient drops injected — scenario did not bite")
	}
	if res.Retry.Recovered == 0 {
		t.Fatalf("retries absorbed nothing: %+v", res.Retry)
	}

	// Convergence within 2% of the fault-free run, measured on the
	// tail-averaged models: the raw final iterate carries one batch's ASP
	// noise, which is jitter rather than a convergence difference.
	tr, err := svm.New(svm.Config{Dim: ds.Dim})
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc := tr.Accuracy(clean.FinalWTail, ds.Test)
	chaosAcc := tr.Accuracy(res.FinalWTail, ds.Test)
	t.Logf("fault-free accuracy %.4f, chaos accuracy %.4f; retry stats %+v; %d injected drops",
		cleanAcc, chaosAcc, res.Retry, fab.Stats().InjectedDrops())
	if chaosAcc < cleanAcc-0.02 {
		t.Fatalf("chaos run accuracy %.4f more than 2%% below fault-free %.4f",
			chaosAcc, cleanAcc)
	}

	// Survivor views: quiesce, then every live rank agrees with the fabric.
	quiesce(fab, func(r int) *fault.Monitor { return res.Cluster.Context(r).Monitor() })
	truth := fab.AliveRanks()
	for _, r := range truth {
		m := res.Cluster.Context(r).Monitor()
		surv := m.Survivors()
		if len(surv) != len(truth) {
			t.Fatalf("rank %d survivor view %v != fabric truth %v", r, surv, truth)
		}
		for i := range surv {
			if surv[i] != truth[i] {
				t.Fatalf("rank %d survivor view %v != fabric truth %v", r, surv, truth)
			}
		}
		// Zero false confirmations: every confirmed-dead rank really died.
		for _, d := range m.ConfirmedDead() {
			if fab.Alive(d) {
				t.Fatalf("rank %d falsely confirmed live rank %d dead", r, d)
			}
		}
	}
}

// The same scenario seed against the same script yields the same event
// timeline (the workload interleaving may differ, but the scenario is
// reproducible by construction).
func TestSoakScenarioReproducible(t *testing.T) {
	s1, err := chaos.Parse("flaky=0.05;blackout=1@15ms+30ms;kill=3@50ms", 99)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := chaos.Parse("flaky=0.05;blackout=1@15ms+30ms;kill=3@50ms", 99)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := s1.Events(), s2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].At != e2[i].At || e1[i].Desc != e2[i].Desc {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}
