// Package chaos drives a simulated fabric through scripted, seeded fault
// scenarios while a training run is in flight: baseline link flakiness,
// blackout windows, stragglers, permanent kills, rejoins and restarts,
// partitions and heals, all scheduled on a wall-clock timeline. A Script is the declarative scenario;
// Run applies its baseline fault model to the fabric and starts a Runner
// goroutine that fires the timed events in order. Because every random
// draw inside the fabric's chaos layer comes from seeded per-link streams
// (see internal/fabric), a scenario is reproducible: the same seed and
// script yield the same injection schedule against the same workload.
//
// Scenarios can be built programmatically (New + the fluent builders) or
// parsed from the compact spec strings the maltrun CLI accepts (Parse),
// e.g. "flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms".
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"malt/internal/fabric"
)

// Event is one timed scenario action.
type Event struct {
	// At is the event's offset from Run.
	At time.Duration
	// Desc is a human-readable label ("kill rank 3").
	Desc string

	apply func(f *fabric.Fabric) error
}

// LogEntry records one applied event.
type LogEntry struct {
	// At is the scheduled offset; Applied the actual wall-clock time.
	At      time.Duration
	Applied time.Time
	Desc    string
	// Err is the fabric's response (nil on success; e.g. killing an
	// already-dead rank errors and is recorded, not fatal).
	Err error
}

// Script is a declarative chaos scenario: a baseline transient-fault model
// installed at start plus a timeline of events. The zero value is unusable;
// construct with New. Builder methods return the script for chaining and
// must not be called after Run.
type Script struct {
	cfg    fabric.ChaosConfig
	events []Event

	// Validation metadata, recorded by the builders: the highest rank id any
	// event references, each rank's kill/join/restart sequence, and every
	// blackout window. Validate checks these against a concrete cluster size
	// before the script is let loose on a fabric.
	maxRank   int
	lifecycle []rankEvent
	blackouts []rankWindow

	// joinFn, when installed with HandleJoin, replaces the raw fabric
	// admission that join/restart events perform.
	joinFn func(rank int) error
}

// rankWindow is one timed per-rank window (a blackout), half-open [at, end).
type rankWindow struct {
	rank    int
	at, end time.Duration
}

// lifeKind distinguishes the membership events of one rank's timeline. The
// ordering matters: when events tie on the same offset, Validate applies
// joins before kills, so a join scheduled at exactly its kill's offset is
// rejected (a join must strictly follow the death it heals).
type lifeKind int

const (
	lifeJoin lifeKind = iota
	lifeKill
	lifeRestart
)

// rankEvent is one membership transition on a rank's timeline.
type rankEvent struct {
	rank int
	at   time.Duration
	kind lifeKind
}

// New creates an empty scenario whose injection streams derive from seed.
func New(seed int64) *Script {
	return &Script{
		cfg: fabric.ChaosConfig{
			Seed:  seed,
			Links: make(map[[2]int]fabric.LinkFault),
		},
		maxRank: -1,
	}
}

// noteRank records a rank reference for Validate.
func (s *Script) noteRank(rank int) {
	if rank > s.maxRank {
		s.maxRank = rank
	}
}

// Seed returns the scenario seed.
func (s *Script) Seed() int64 { return s.cfg.Seed }

// Events returns the scheduled timeline (sorted by At, stable).
func (s *Script) Events() []Event {
	out := append([]Event(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FlakyAll gives every link a per-operation drop probability — the
// always-on packet loss floor of a congested network.
func (s *Script) FlakyAll(dropProb float64) *Script {
	s.cfg.Default.DropProb = dropProb
	return s
}

// FlakyLink overrides one directed link's drop probability.
func (s *Script) FlakyLink(from, to int, dropProb float64) *Script {
	s.noteRank(from)
	s.noteRank(to)
	lf := s.linkFault(from, to)
	lf.DropProb = dropProb
	s.cfg.Links[[2]int{from, to}] = lf
	return s
}

// JitterAll gives every link a straggler model: with probability prob one
// operation's wire cost is multiplied by mult.
func (s *Script) JitterAll(prob, mult float64) *Script {
	s.cfg.Default.JitterProb = prob
	s.cfg.Default.JitterMult = mult
	return s
}

// linkFault returns the link's override, seeded from the default.
func (s *Script) linkFault(from, to int) fabric.LinkFault {
	if lf, ok := s.cfg.Links[[2]int{from, to}]; ok {
		return lf
	}
	return s.cfg.Default
}

func (s *Script) add(at time.Duration, desc string, apply func(*fabric.Fabric) error) *Script {
	s.events = append(s.events, Event{At: at, Desc: desc, apply: apply})
	return s
}

// KillAt permanently kills a rank at the given offset (fail-stop crash).
func (s *Script) KillAt(at time.Duration, rank int) *Script {
	s.noteRank(rank)
	s.lifecycle = append(s.lifecycle, rankEvent{rank: rank, at: at, kind: lifeKill})
	return s.add(at, fmt.Sprintf("kill rank %d", rank),
		func(f *fabric.Fabric) error { return f.Kill(rank) })
}

// JoinAt re-admits a previously-killed rank at the given offset: the
// transport mints a fresh membership epoch, survivors rebuild their dataflow
// lists, and the rank's old incarnation stays fenced behind the epoch check.
// By default the event performs the raw fabric admission (Fabric.Join);
// workloads that must also pull a state snapshot and restart the replica
// goroutine install their cluster-level rejoin with HandleJoin.
func (s *Script) JoinAt(at time.Duration, rank int) *Script {
	s.noteRank(rank)
	s.lifecycle = append(s.lifecycle, rankEvent{rank: rank, at: at, kind: lifeJoin})
	return s.add(at, fmt.Sprintf("join rank %d", rank),
		func(f *fabric.Fabric) error { return s.applyJoin(f, rank) })
}

// RestartAt bounces a rank at the given offset: a fail-stop kill followed
// immediately by a rejoin under a fresh epoch — the "process restarted by a
// supervisor" pattern compressed to one instant. Unlike JoinAt it needs no
// prior kill in the script.
func (s *Script) RestartAt(at time.Duration, rank int) *Script {
	s.noteRank(rank)
	s.lifecycle = append(s.lifecycle, rankEvent{rank: rank, at: at, kind: lifeRestart})
	return s.add(at, fmt.Sprintf("restart rank %d", rank),
		func(f *fabric.Fabric) error {
			if err := f.Kill(rank); err != nil {
				return err
			}
			return s.applyJoin(f, rank)
		})
}

// HandleJoin installs the function join/restart events call to re-admit a
// rank, replacing the default raw fabric admission. Training harnesses point
// it at their cluster-level rejoin (snapshot pull, replica restart). Must be
// set before Run.
func (s *Script) HandleJoin(fn func(rank int) error) *Script {
	s.joinFn = fn
	return s
}

// applyJoin re-admits rank through the installed handler or, absent one,
// the fabric's own membership join.
func (s *Script) applyJoin(f *fabric.Fabric, rank int) error {
	if s.joinFn != nil {
		return s.joinFn(rank)
	}
	_, err := f.Join(rank)
	return err
}

// PartitionAt splits the fabric into the given groups at the offset.
func (s *Script) PartitionAt(at time.Duration, groups [][]int) *Script {
	cp := make([][]int, len(groups))
	for i, g := range groups {
		cp[i] = append([]int(nil), g...)
		for _, r := range g {
			s.noteRank(r)
		}
	}
	return s.add(at, fmt.Sprintf("partition %v", cp),
		func(f *fabric.Fabric) error { f.Heal(); return f.Partition(cp) })
}

// HealAt removes all partitions at the offset.
func (s *Script) HealAt(at time.Duration) *Script {
	return s.add(at, "heal",
		func(f *fabric.Fabric) error { f.Heal(); return nil })
}

// BlackoutAt makes every link touching rank fail transiently for the
// window [at, at+dur) — the machine goes dark without dying (NIC reset,
// link renegotiation). Two events are scheduled: on and off.
func (s *Script) BlackoutAt(at, dur time.Duration, rank int) *Script {
	s.noteRank(rank)
	s.blackouts = append(s.blackouts, rankWindow{rank: rank, at: at, end: at + dur})
	s.add(at, fmt.Sprintf("blackout rank %d on", rank),
		func(f *fabric.Fabric) error { return f.SetRankBlackout(rank, true) })
	return s.add(at+dur, fmt.Sprintf("blackout rank %d off", rank),
		func(f *fabric.Fabric) error { return f.SetRankBlackout(rank, false) })
}

// StragglerAt multiplies the wire cost of every link touching rank by mult
// for the window [at, at+dur) — a transiently slow machine (page-fault
// storm, background daemon) rather than a dead one.
func (s *Script) StragglerAt(at, dur time.Duration, rank int, mult float64) *Script {
	s.noteRank(rank)
	s.add(at, fmt.Sprintf("straggler rank %d x%g on", rank, mult),
		func(f *fabric.Fabric) error { return setRankStraggler(f, rank, 1, mult) })
	return s.add(at+dur, fmt.Sprintf("straggler rank %d off", rank),
		func(f *fabric.Fabric) error { return setRankStraggler(f, rank, 0, 0) })
}

// setRankStraggler rewrites the jitter fields of every link touching rank,
// preserving the links' drop/blackout state.
func setRankStraggler(f *fabric.Fabric, rank int, prob, mult float64) error {
	for other := 0; other < f.Ranks(); other++ {
		if other == rank {
			continue
		}
		for _, link := range [][2]int{{rank, other}, {other, rank}} {
			lf := f.LinkFaultOf(link[0], link[1])
			lf.JitterProb = prob
			lf.JitterMult = mult
			if err := f.SetLinkFault(link[0], link[1], lf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate checks the script against a concrete cluster size before it is
// let loose on a fabric: every referenced rank must exist, and the script's
// membership timeline must be coherent. It replays each rank's
// kill/join/restart sequence in offset order and rejects the contradictions
// that would otherwise surface mid-run as confusing fabric errors in the
// chaos log:
//
//   - a blackout window starting while its rank is dead (blacking out a dead
//     machine is a no-op that weakens the experiment);
//   - a join of a rank that is alive at that point — including a rank the
//     script never kills, and a second join without an intervening kill;
//   - a join or restart inside the rank's own blackout window (a machine
//     whose links are dark cannot complete the rejoin handshake).
//
// Joins must strictly follow the kill they heal; a restart carries its own
// kill and may fire at any time. Parse catches spec-level malformations
// (negative ranks, degenerate windows); Validate catches what only the
// cluster size and the assembled timeline determine.
func (s *Script) Validate(ranks int) error {
	if ranks <= 0 {
		return fmt.Errorf("chaos: cluster size %d must be positive", ranks)
	}
	if s.maxRank >= ranks {
		return fmt.Errorf("chaos: script references rank %d but the cluster has ranks 0..%d", s.maxRank, ranks-1)
	}
	evs := append([]rankEvent(nil), s.lifecycle...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].kind < evs[j].kind
	})
	// Replay the membership timeline: every rank starts alive.
	dead := make(map[int]bool)
	for _, ev := range evs {
		switch ev.kind {
		case lifeKill:
			dead[ev.rank] = true
		case lifeJoin:
			if !dead[ev.rank] {
				return fmt.Errorf("chaos: join of rank %d at %v but the rank is alive there — a join must follow a kill", ev.rank, ev.at)
			}
			if w, ok := s.blackoutContaining(ev.rank, ev.at); ok {
				return fmt.Errorf("chaos: join of rank %d at %v falls inside its own blackout [%v, %v)",
					ev.rank, ev.at, w.at, w.end)
			}
			dead[ev.rank] = false
		case lifeRestart:
			if w, ok := s.blackoutContaining(ev.rank, ev.at); ok {
				return fmt.Errorf("chaos: restart of rank %d at %v falls inside its own blackout [%v, %v)",
					ev.rank, ev.at, w.at, w.end)
			}
			dead[ev.rank] = false
		}
	}
	// Blackout windows must open on a machine that is alive at that instant
	// (a window opened before a kill may legitimately outlast it).
	for _, b := range s.blackouts {
		if at, isDead := deadAt(evs, b.rank, b.at); isDead {
			return fmt.Errorf("chaos: blackout of rank %d at %v starts at or after its kill at %v",
				b.rank, b.at, at)
		}
	}
	return nil
}

// blackoutContaining returns the rank's blackout window containing the
// offset, if any. The interval is half-open: a join exactly at the window's
// end is outside it.
func (s *Script) blackoutContaining(rank int, at time.Duration) (rankWindow, bool) {
	for _, b := range s.blackouts {
		if b.rank == rank && at >= b.at && at < b.end {
			return b, true
		}
	}
	return rankWindow{}, false
}

// deadAt replays the (sorted) membership timeline up to and including the
// offset and reports whether rank is dead there, along with its most recent
// kill offset.
func deadAt(evs []rankEvent, rank int, at time.Duration) (killAt time.Duration, dead bool) {
	for _, ev := range evs {
		if ev.rank != rank || ev.at > at {
			continue
		}
		switch ev.kind {
		case lifeKill:
			dead, killAt = true, ev.at
		case lifeJoin, lifeRestart:
			dead = false
		}
	}
	return killAt, dead
}

// Run installs the script's baseline fault model on the fabric and starts
// a Runner firing the timeline. Stop the runner before tearing the fabric
// down; events that have not fired yet are cancelled by Stop.
func (s *Script) Run(f *fabric.Fabric) *Runner {
	f.EnableChaos(s.cfg)
	r := &Runner{
		fab:    f,
		events: s.Events(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.loop()
	return r
}

// Runner executes a script's timeline against one fabric.
type Runner struct {
	fab    *fabric.Fabric
	events []Event
	stop   chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	stopped bool
	log     []LogEntry
	started time.Time
}

func (r *Runner) loop() {
	defer close(r.done)
	start := time.Now()
	r.mu.Lock()
	r.started = start
	r.mu.Unlock()
	for _, ev := range r.events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(wait):
			}
		} else {
			select {
			case <-r.stop:
				return
			default:
			}
		}
		err := ev.apply(r.fab)
		r.mu.Lock()
		r.log = append(r.log, LogEntry{At: ev.At, Applied: time.Now(), Desc: ev.Desc, Err: err})
		r.mu.Unlock()
	}
}

// Wait blocks until every event has fired (or the runner was stopped).
func (r *Runner) Wait() { <-r.done }

// Stop cancels pending events and waits for the runner goroutine. The
// baseline fault model stays installed (call Fabric.DisableChaos to lift
// it). Safe to call more than once.
func (r *Runner) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
	r.mu.Unlock()
	<-r.done
}

// Log returns the events applied so far, in firing order.
func (r *Runner) Log() []LogEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LogEntry(nil), r.log...)
}

// String summarizes the applied events ("3/5 events fired").
func (r *Runner) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("chaos.Runner(%d/%d events fired)", len(r.log), len(r.events))
}
