package chaos

import (
	"errors"
	"testing"
	"time"

	"malt/internal/fabric"
)

func newFab(t *testing.T, ranks int) *fabric.Fabric {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestScriptBaselineInstalledAtRun(t *testing.T) {
	f := newFab(t, 3)
	s := New(7).FlakyAll(0.25).FlakyLink(0, 1, 0.9)
	r := s.Run(f)
	defer r.Stop()
	if !f.ChaosEnabled() {
		t.Fatal("Run did not enable chaos")
	}
	if lf := f.LinkFaultOf(0, 1); lf.DropProb != 0.9 {
		t.Fatalf("link 0->1 = %+v", lf)
	}
	if lf := f.LinkFaultOf(1, 2); lf.DropProb != 0.25 {
		t.Fatalf("default link = %+v", lf)
	}
}

func TestRunnerFiresKillOnSchedule(t *testing.T) {
	f := newFab(t, 3)
	r := New(1).KillAt(5*time.Millisecond, 2).Run(f)
	defer r.Stop()
	r.Wait()
	if f.Alive(2) {
		t.Fatal("rank 2 should be dead after the script ran")
	}
	log := r.Log()
	if len(log) != 1 || log[0].Err != nil || log[0].Desc != "kill rank 2" {
		t.Fatalf("log = %+v", log)
	}
}

func TestRunnerBlackoutWindowOpensAndCloses(t *testing.T) {
	f := newFab(t, 2)
	r := New(1).BlackoutAt(2*time.Millisecond, 10*time.Millisecond, 1).Run(f)
	defer r.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !f.LinkFaultOf(0, 1).Blackout {
		if time.Now().After(deadline) {
			t.Fatal("blackout never opened")
		}
		//maltlint:allow rawsleep -- bounded poll for the chaos schedule to open a fault window; no fabric retry is involved
		time.Sleep(time.Millisecond)
	}
	r.Wait()
	if f.LinkFaultOf(0, 1).Blackout || f.LinkFaultOf(1, 0).Blackout {
		t.Fatal("blackout never closed")
	}
}

func TestRunnerStragglerRestoresLinkState(t *testing.T) {
	f := newFab(t, 2)
	s := New(1).FlakyAll(0.1).StragglerAt(0, 5*time.Millisecond, 1, 8)
	r := s.Run(f)
	defer r.Stop()
	r.Wait()
	lf := f.LinkFaultOf(0, 1)
	if lf.JitterMult != 0 || lf.JitterProb != 0 {
		t.Fatalf("straggler window not closed: %+v", lf)
	}
	if lf.DropProb != 0.1 {
		t.Fatalf("straggler toggling clobbered drop prob: %+v", lf)
	}
}

func TestRunnerStopCancelsPendingEvents(t *testing.T) {
	f := newFab(t, 2)
	r := New(1).KillAt(10*time.Second, 1).Run(f)
	r.Stop()
	r.Stop() // idempotent
	if !f.Alive(1) {
		t.Fatal("cancelled kill still fired")
	}
	if len(r.Log()) != 0 {
		t.Fatalf("log = %+v", r.Log())
	}
}

func TestRunnerPartitionAndHeal(t *testing.T) {
	f := newFab(t, 4)
	r := New(1).
		PartitionAt(1*time.Millisecond, [][]int{{0, 1}, {2, 3}}).
		HealAt(6 * time.Millisecond).
		Run(f)
	defer r.Stop()
	r.Wait()
	if err := f.Ping(0, 2); err != nil {
		t.Fatalf("post-heal ping failed: %v", err)
	}
	log := r.Log()
	if len(log) != 2 {
		t.Fatalf("log = %+v", log)
	}
}

func TestRunnerLogsEventErrors(t *testing.T) {
	f := newFab(t, 2)
	// Rank 99 does not exist: the partition event fails and the error is
	// recorded in the log rather than crashing the runner.
	r := New(1).KillAt(0, 1).PartitionAt(time.Millisecond, [][]int{{0}, {99}}).Run(f)
	defer r.Stop()
	r.Wait()
	log := r.Log()
	if len(log) != 2 || log[0].Err != nil || log[1].Err == nil {
		t.Fatalf("log = %+v", log)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("flaky=0.05; flaky=0-1:0.5; jitter=0.1:4; kill=3@300ms; "+
		"blackout=1@100ms+80ms; straggler=2:6@50ms+25ms; partition=0,1|2,3@200ms; heal@400ms", 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed() != 42 {
		t.Fatalf("seed = %d", s.Seed())
	}
	evs := s.Events()
	// kill + blackout(2) + straggler(2) + partition + heal = 7 events.
	if len(evs) != 7 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted: %+v", evs)
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",
		"flaky=1.5",         // probability out of range
		"kill=3",            // missing @T
		"kill=x@1s",         // bad rank
		"blackout=1@100ms",  // missing +D
		"straggler=2@1s+1s", // missing :M
		"partition=0,1|2,3", // missing @T
		"heal@notaduration", // bad duration
		"jitter=0.1",        // missing :M
		"flaky=0-x:0.5",     // bad link
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestParseEmptySpecIsCleanScript(t *testing.T) {
	s, err := Parse("", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events()) != 0 {
		t.Fatalf("events = %+v", s.Events())
	}
	f := newFab(t, 2)
	r := s.Run(f)
	defer r.Stop()
	r.Wait()
	if err := f.Write(0, 1, "", nil); err != nil && !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("clean script injected faults: %v", err)
	}
}

// A scripted kill→join cycle drives the fabric's membership layer: the rank
// is readmitted under a fresh epoch and its pre-death incarnation stays
// fenced. A restart does both halves in one event.
func TestRunnerJoinReadmitsRank(t *testing.T) {
	f := newFab(t, 3)
	before := f.Epoch()
	r := New(1).
		KillAt(2*time.Millisecond, 2).
		JoinAt(6*time.Millisecond, 2).
		RestartAt(10*time.Millisecond, 1).
		Run(f)
	defer r.Stop()
	r.Wait()
	for _, ev := range r.Log() {
		if ev.Err != nil {
			t.Fatalf("event %q failed: %v", ev.Desc, ev.Err)
		}
	}
	if !f.Alive(2) || !f.Alive(1) {
		t.Fatalf("ranks not readmitted: alive(1)=%v alive(2)=%v", f.Alive(1), f.Alive(2))
	}
	// kill+join+restart = at least three epoch bumps past the starting one.
	if got := f.Epoch(); got < before+3 {
		t.Fatalf("epoch = %d, want >= %d", got, before+3)
	}
}

// HandleJoin replaces the raw fabric admission: training harnesses hook the
// cluster-level rejoin (snapshot pull, replica restart) in here.
func TestRunnerJoinUsesInstalledHandler(t *testing.T) {
	f := newFab(t, 2)
	joined := make(chan int, 1)
	s := New(1).KillAt(2*time.Millisecond, 1).JoinAt(5*time.Millisecond, 1)
	s.HandleJoin(func(rank int) error {
		joined <- rank
		_, err := f.Join(rank)
		return err
	})
	r := s.Run(f)
	defer r.Stop()
	r.Wait()
	select {
	case got := <-joined:
		if got != 1 {
			t.Fatalf("handler saw rank %d, want 1", got)
		}
	default:
		t.Fatal("join event did not call the installed handler")
	}
	if !f.Alive(1) {
		t.Fatal("rank 1 not alive after handled join")
	}
}
