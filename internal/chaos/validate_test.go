package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestValidateAcceptsInRangeScript(t *testing.T) {
	s, err := Parse("flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms;straggler=2:4@50ms+50ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("valid 4-rank script rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRangeRank(t *testing.T) {
	cases := []string{
		"kill=4@100ms",
		"blackout=7@100ms+10ms",
		"straggler=5:4@50ms+50ms",
		"flaky=0-6:0.5",
		"partition=0,1|2,6@100ms",
	}
	for _, spec := range cases {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		err = s.Validate(4)
		if err == nil {
			t.Errorf("Validate(4) accepted %q, which references a rank >= 4", spec)
			continue
		}
		if !strings.Contains(err.Error(), "cluster has ranks 0..3") {
			t.Errorf("Validate(4) on %q: unexpected error %v", spec, err)
		}
	}
}

func TestValidateRejectsBlackoutAfterKill(t *testing.T) {
	// Blackout starting exactly at the kill, and strictly after it: both are
	// contradictions (the machine is already dead).
	for _, spec := range []string{
		"kill=1@100ms;blackout=1@100ms+50ms",
		"kill=1@100ms;blackout=1@200ms+50ms",
	} {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		err = s.Validate(4)
		if err == nil || !strings.Contains(err.Error(), "at or after its kill") {
			t.Errorf("Validate accepted kill-then-blackout %q (err=%v)", spec, err)
		}
	}
}

func TestValidateAllowsBlackoutBeforeKill(t *testing.T) {
	// A blackout window that opens before the kill is a legitimate scenario
	// (flaky machine that later dies), even if the window would outlast it.
	s, err := Parse("blackout=1@50ms+500ms;kill=1@100ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("blackout-before-kill rejected: %v", err)
	}
	// Same check through the fluent builders (clause order must not matter).
	s2 := New(1).KillAt(100*time.Millisecond, 1).BlackoutAt(50*time.Millisecond, 20*time.Millisecond, 1)
	if err := s2.Validate(4); err != nil {
		t.Fatalf("builder blackout-before-kill rejected: %v", err)
	}
}

func TestValidateOtherRankUnaffectedByKill(t *testing.T) {
	s, err := Parse("kill=1@100ms;blackout=2@200ms+50ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("blackout of a different rank rejected: %v", err)
	}
}

func TestValidateClusterSizeAndEmptyScript(t *testing.T) {
	if err := New(1).Validate(4); err != nil {
		t.Fatalf("empty script rejected: %v", err)
	}
	if err := New(1).Validate(0); err == nil {
		t.Fatal("zero-rank cluster accepted")
	}
	// A script touching only rank 0 fits even a single-rank cluster.
	if err := New(1).KillAt(time.Millisecond, 0).Validate(1); err != nil {
		t.Fatalf("rank-0 script on 1-rank cluster rejected: %v", err)
	}
	if err := New(1).KillAt(time.Millisecond, 1).Validate(1); err == nil {
		t.Fatal("rank-1 script on 1-rank cluster accepted")
	}
}

// A join must heal a death: joining a rank that is alive at that point of
// the timeline — never killed, or already rejoined — is a contradiction.
// Kills and joins may alternate; a restart carries its own kill.
func TestValidateJoinRules(t *testing.T) {
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"kill=1@100ms;join=1@200ms", true},
		{"join=1@100ms", false},                                       // never killed
		{"join=1@100ms;kill=1@200ms", false},                          // join precedes kill
		{"kill=1@100ms;join=1@100ms", false},                          // join must be strictly later
		{"kill=1@100ms;join=1@200ms;join=1@300ms", false},             // double join
		{"kill=1@100ms;join=1@200ms;kill=1@300ms;join=1@400ms", true}, // alternation
		{"kill=1@100ms;join=2@200ms", false},                          // wrong rank joined
		{"restart=1@100ms", true},                                     // restart needs no prior kill
		{"restart=1@100ms;restart=1@200ms", true},
		{"kill=1@100ms;restart=1@200ms;join=1@300ms", false}, // restart leaves the rank alive
	} {
		s, err := Parse(tc.spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		err = s.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("Validate rejected %q: %v", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate accepted incoherent %q", tc.spec)
		}
	}
}

// A machine whose links are dark cannot complete the rejoin handshake, so a
// join (or a restart's implicit join) inside the rank's own blackout window
// is rejected. The window is half-open: joining exactly at its end is fine,
// as is joining during another rank's blackout.
func TestValidateJoinDuringOwnBlackout(t *testing.T) {
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"blackout=1@50ms+200ms;kill=1@100ms;join=1@150ms", false},
		{"blackout=1@50ms+100ms;kill=1@100ms;join=1@150ms", true}, // at window end
		{"blackout=2@50ms+200ms;kill=1@100ms;join=1@150ms", true}, // other rank dark
		{"blackout=1@50ms+200ms;restart=1@100ms", false},
		{"blackout=1@50ms+200ms;restart=1@250ms", true},
	} {
		s, err := Parse(tc.spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		err = s.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("Validate rejected %q: %v", tc.spec, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("Validate accepted join-in-blackout %q", tc.spec)
			} else if !strings.Contains(err.Error(), "blackout") {
				t.Errorf("Validate on %q: unexpected error %v", tc.spec, err)
			}
		}
	}
}

// The blackout-of-a-dead-machine rule is timeline-aware: a rank that has
// rejoined may black out again, while a blackout between its kill and its
// join is still the old contradiction.
func TestValidateBlackoutAroundRejoin(t *testing.T) {
	s, err := Parse("kill=1@100ms;join=1@200ms;blackout=1@300ms+50ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("blackout after rejoin rejected: %v", err)
	}
	s, err = Parse("kill=1@100ms;join=1@300ms;blackout=1@200ms+50ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err == nil || !strings.Contains(err.Error(), "at or after its kill") {
		t.Fatalf("blackout while dead accepted (err=%v)", err)
	}
}
