package chaos

import (
	"strings"
	"testing"
	"time"
)

// Parse cannot know the cluster size, but negative ids are invalid for
// every cluster and must fail fast rather than build a script whose events
// silently hit no rank.
func TestParseRejectsNegativeRanks(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string // substring expected in the error
	}{
		{"kill=-1@100ms", "negative"},
		{"blackout=-2@100ms+50ms", "negative"},
		{"straggler=-3:4@50ms+25ms", "negative"},
		{"partition=0,-1|2,3@200ms", "negative"},
		{"flaky=1--2:0.5", "negative"}, // link endpoint
	} {
		_, err := Parse(tc.spec, 1)
		if err == nil {
			t.Errorf("spec %q parsed without error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

// Overlapping blackouts on one rank are incoherent: the first window's
// Restore would end the second early, so the spec would not run the fault
// pattern it describes. Overlaps across different ranks are fine, as are
// back-to-back windows (the interval is half-open).
func TestParseRejectsOverlappingBlackouts(t *testing.T) {
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"blackout=1@100ms+80ms;blackout=1@150ms+80ms", false}, // partial overlap
		{"blackout=1@100ms+80ms;blackout=1@110ms+10ms", false}, // nested
		{"blackout=1@100ms+80ms;blackout=1@100ms+80ms", false}, // duplicate
		{"blackout=1@150ms+80ms;blackout=1@100ms+80ms", false}, // overlap, later clause first
		{"blackout=1@100ms+80ms;blackout=2@150ms+80ms", true},  // different ranks
		{"blackout=1@100ms+50ms;blackout=1@150ms+50ms", true},  // adjacent half-open windows
	} {
		_, err := Parse(tc.spec, 1)
		if tc.ok && err != nil {
			t.Errorf("spec %q: unexpected error %v", tc.spec, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("spec %q parsed without error", tc.spec)
			} else if !strings.Contains(err.Error(), "overlaps") {
				t.Errorf("spec %q: error %q does not mention overlap", tc.spec, err)
			}
		}
	}
}

// Windows must describe a real interval: a negative offset or a
// non-positive duration would schedule a Restore at or before its Blackout.
func TestParseRejectsDegenerateWindows(t *testing.T) {
	for _, spec := range []string{
		"blackout=1@-100ms+50ms", // negative offset
		"blackout=1@100ms+0s",    // zero duration
		"blackout=1@100ms+-50ms", // negative duration
		"straggler=2:4@50ms+0s",  // zero duration (shared window parser)
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

// join/restart clauses parse into timeline events and share the rank/offset
// syntax (and its error handling) with kill.
func TestParseJoinAndRestart(t *testing.T) {
	s, err := Parse("kill=2@100ms;join=2@250ms;restart=1@300ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	if evs[1].Desc != "join rank 2" || evs[1].At != 250*time.Millisecond {
		t.Fatalf("join event = %+v", evs[1])
	}
	if evs[2].Desc != "restart rank 1" || evs[2].At != 300*time.Millisecond {
		t.Fatalf("restart event = %+v", evs[2])
	}
	for _, spec := range []string{
		"join=2",          // missing @T
		"join=x@1s",       // bad rank
		"join=-1@100ms",   // negative rank
		"join=2@notatime", // bad offset
		"restart=1",       // missing @T
		"restart=-3@50ms", // negative rank
		"restart=1@bogus", // bad offset
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}
