// Package consistency implements the three synchronization disciplines MALT
// replicas can train under (paper §3.2 and Fig 10):
//
//   - BSP (bulk-synchronous): every rank waits at a barrier after each
//     communication batch; training proceeds at the speed of the slowest
//     rank but every gather sees updates from the same round.
//   - ASP (fully asynchronous): no waiting at all; updates from ranks that
//     lag more than a cutoff behind are skipped at gather time so stale
//     gradients never pollute a fresh model.
//   - SSP (bounded staleness, after Cui et al.): ranks run ahead freely up
//     to a staleness bound; a rank that would exceed the bound relative to
//     the slowest peer stalls until the straggler catches up.
package consistency

import (
	"fmt"
	"time"

	"malt/internal/vol"
)

// Model names a synchronization discipline.
type Model int

const (
	// BSP is bulk-synchronous parallel.
	BSP Model = iota
	// ASP is fully asynchronous parallel.
	ASP
	// SSP is stale synchronous parallel (bounded staleness).
	SSP
)

// String returns the conventional acronym.
func (m Model) String() string {
	switch m {
	case BSP:
		return "BSP"
	case ASP:
		return "ASP"
	case SSP:
		return "SSP"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts a flag string ("bsp", "asp", "ssp") to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "bsp", "BSP":
		return BSP, nil
	case "asp", "ASP":
		return ASP, nil
	case "ssp", "SSP":
		return SSP, nil
	default:
		return 0, fmt.Errorf("consistency: unknown model %q", s)
	}
}

// Policy configures a Controller.
type Policy struct {
	// Model selects the discipline.
	Model Model
	// Bound is the SSP staleness bound: a rank at iteration i stalls while
	// any live peer is below i-Bound. Ignored for BSP/ASP. Default 3.
	Bound uint64
	// ASPCutoff makes ASP gathers skip updates older than own-iteration
	// minus the cutoff ("skips merging of updates from the stragglers").
	// 0 disables filtering.
	ASPCutoff uint64
	// StallPoll is how often an SSP stall re-checks the straggler.
	// Default 200 µs.
	StallPoll time.Duration
	// StallLimit caps one SSP stall; on expiry training proceeds anyway
	// (the straggler is probably dead and the fault layer will confirm).
	// Default 2 s.
	StallLimit time.Duration
	// Alive reports whether a peer rank is still live. Dead peers are
	// excluded from staleness decisions. If nil, all peers count.
	Alive func(rank int) bool
}

func (p Policy) withDefaults() Policy {
	if p.Model == SSP && p.Bound == 0 {
		p.Bound = 3
	}
	if p.StallPoll == 0 {
		p.StallPoll = 200 * time.Microsecond
	}
	if p.StallLimit == 0 {
		p.StallLimit = 2 * time.Second
	}
	return p
}

// Controller drives one rank's synchronization. Create one per rank.
type Controller struct {
	policy Policy
}

// New returns a Controller for the given policy.
func New(policy Policy) *Controller {
	return &Controller{policy: policy.withDefaults()}
}

// Policy returns the controller's (defaulted) policy.
func (c *Controller) Policy() Policy { return c.policy }

// Gather folds peer updates into the vector under the policy's staleness
// rules: ASP applies the cutoff filter; BSP and SSP fold everything.
func (c *Controller) Gather(v *vol.Vector, udf vol.UDF, myIter uint64) (vol.GatherStats, error) {
	if c.policy.Model == ASP && c.policy.ASPCutoff > 0 {
		cut := uint64(0)
		if myIter > c.policy.ASPCutoff {
			cut = myIter - c.policy.ASPCutoff
		}
		return v.GatherIf(udf, func(from int, iter uint64) bool {
			return iter >= cut
		})
	}
	return v.Gather(udf)
}

// Advance enforces the post-batch synchronization for iteration myIter and
// returns how long the rank waited (barrier or stall time). Call it after
// scatter+gather, before the next training batch.
func (c *Controller) Advance(v *vol.Vector, myIter uint64) (time.Duration, error) {
	switch c.policy.Model {
	case BSP:
		start := time.Now()
		err := v.Barrier()
		return time.Since(start), err
	case ASP:
		return 0, nil
	case SSP:
		// Drain the send pipeline before judging staleness: SSP's bound is
		// on *visible* iterations, so our own updates must have landed
		// before we stall on peers (and before peers stall on us). Drain
		// time counts as wait time.
		start := time.Now()
		if err := v.Drain(); err != nil {
			return time.Since(start), err
		}
		return time.Since(start) + c.stall(v, myIter), nil
	default:
		return 0, fmt.Errorf("consistency: unknown model %v", c.policy.Model)
	}
}

// stall blocks while any live peer lags more than Bound behind myIter.
// A peer that has never been heard from (iter 0) is exempt until it speaks:
// during warm-up there is nothing to be stale relative to.
func (c *Controller) stall(v *vol.Vector, myIter uint64) time.Duration {
	if myIter <= c.policy.Bound {
		return 0
	}
	threshold := myIter - c.policy.Bound
	start := time.Now()
	deadline := start.Add(c.policy.StallLimit)
	for {
		lagging := false
		for rank, iter := range v.PeerIters() {
			if iter == 0 {
				continue
			}
			if c.policy.Alive != nil && !c.policy.Alive(rank) {
				continue
			}
			if iter < threshold {
				lagging = true
				break
			}
		}
		if !lagging {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			return time.Since(start)
		}
		time.Sleep(c.policy.StallPoll)
	}
}
