package consistency

import (
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

func newVectors(t *testing.T, ranks, dim int) ([]*vol.Vector, *fabric.Fabric) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	c := dstorm.NewCluster(f)
	g, err := dataflow.New(dataflow.All, ranks)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]*vol.Vector, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs[r], errs[r] = vol.Create(c.Node(r), "w", vol.Dense, dim, g, vol.Options{QueueLen: 8})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return vecs, f
}

func TestParseModel(t *testing.T) {
	for s, want := range map[string]Model{"bsp": BSP, "asp": ASP, "ssp": SSP, "BSP": BSP} {
		got, err := ParseModel(s)
		if err != nil || got != want {
			t.Fatalf("ParseModel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Fatal("invalid model should fail")
	}
	if BSP.String() != "BSP" || ASP.String() != "ASP" || SSP.String() != "SSP" {
		t.Fatal("String names wrong")
	}
}

func TestBSPAdvanceBarriers(t *testing.T) {
	vecs, _ := newVectors(t, 3, 2)
	ctrl := New(Policy{Model: BSP})
	var wg sync.WaitGroup
	for _, v := range vecs {
		wg.Add(1)
		go func(v *vol.Vector) {
			defer wg.Done()
			if _, err := ctrl.Advance(v, 1); err != nil {
				t.Errorf("advance: %v", err)
			}
		}(v)
	}
	wg.Wait()
}

func TestASPAdvanceNeverBlocks(t *testing.T) {
	vecs, _ := newVectors(t, 2, 2)
	ctrl := New(Policy{Model: ASP})
	start := time.Now()
	if _, err := ctrl.Advance(vecs[0], 100); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("ASP advance blocked")
	}
}

func TestASPGatherSkipsStaleUpdates(t *testing.T) {
	vecs, _ := newVectors(t, 3, 2)
	// Peer 1 scatters at iteration 1 (stale), peer 2 at iteration 50.
	vecs[1].Data()[0] = 100
	if _, err := vecs[1].Scatter(1); err != nil {
		t.Fatal(err)
	}
	vecs[2].Data()[0] = 60
	if _, err := vecs[2].Scatter(50); err != nil {
		t.Fatal(err)
	}
	ctrl := New(Policy{Model: ASP, ASPCutoff: 10})
	st, err := ctrl.Gather(vecs[0], vol.AverageIncoming, 52)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 {
		t.Fatalf("folded %d updates, want 1 (stale one skipped)", st.Updates)
	}
	if vecs[0].Data()[0] != 60 {
		t.Fatalf("data = %v, want the fresh update only", vecs[0].Data())
	}
}

func TestASPGatherNoCutoffFoldsAll(t *testing.T) {
	vecs, _ := newVectors(t, 3, 1)
	if _, err := vecs[1].Scatter(1); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[2].Scatter(50); err != nil {
		t.Fatal(err)
	}
	ctrl := New(Policy{Model: ASP})
	st, err := ctrl.Gather(vecs[0], vol.Average, 52)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 2 {
		t.Fatalf("folded %d updates, want 2", st.Updates)
	}
}

func TestSSPStallsForStraggler(t *testing.T) {
	vecs, _ := newVectors(t, 2, 1)
	ctrl := New(Policy{Model: SSP, Bound: 3, StallPoll: time.Millisecond, StallLimit: 5 * time.Second})
	// Peer 1 is at iteration 2; rank 0 wants to advance to 10 (gap 8 > 3).
	if _, err := vecs[1].Scatter(2); err != nil {
		t.Fatal(err)
	}
	released := make(chan time.Duration, 1)
	go func() {
		waited, _ := ctrl.Advance(vecs[0], 10)
		released <- waited
	}()
	select {
	case <-released:
		t.Fatal("SSP advanced despite straggler beyond bound")
	case <-time.After(50 * time.Millisecond):
	}
	// Straggler catches up to iteration 8 (gap 2 ≤ 3): stall releases.
	if _, err := vecs[1].Scatter(8); err != nil {
		t.Fatal(err)
	}
	select {
	case waited := <-released:
		if waited < 40*time.Millisecond {
			t.Fatalf("waited = %v, expected a real stall", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSP did not release after straggler caught up")
	}
}

func TestSSPNoStallWithinBound(t *testing.T) {
	vecs, _ := newVectors(t, 2, 1)
	ctrl := New(Policy{Model: SSP, Bound: 5})
	if _, err := vecs[1].Scatter(8); err != nil {
		t.Fatal(err)
	}
	waited, err := ctrl.Advance(vecs[0], 10) // gap 2 <= 5
	if err != nil {
		t.Fatal(err)
	}
	if waited > 50*time.Millisecond {
		t.Fatalf("waited %v despite being within bound", waited)
	}
}

func TestSSPIgnoresSilentAndDeadPeers(t *testing.T) {
	vecs, f := newVectors(t, 3, 1)
	dead := map[int]bool{}
	ctrl := New(Policy{
		Model: SSP, Bound: 1,
		StallLimit: 5 * time.Second,
		Alive:      func(r int) bool { return !dead[r] },
	})
	// Peer 1 never scattered (iter 0): exempt. Peer 2 scattered long ago
	// but is dead: exempt.
	if _, err := vecs[2].Scatter(1); err != nil {
		t.Fatal(err)
	}
	dead[2] = true
	waited, err := ctrl.Advance(vecs[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if waited > 100*time.Millisecond {
		t.Fatalf("stalled %v on exempt peers", waited)
	}
	_ = f
}

func TestSSPStallLimitEscapes(t *testing.T) {
	vecs, _ := newVectors(t, 2, 1)
	ctrl := New(Policy{Model: SSP, Bound: 1, StallPoll: time.Millisecond, StallLimit: 30 * time.Millisecond})
	if _, err := vecs[1].Scatter(1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waited, err := ctrl.Advance(vecs[0], 100) // straggler never catches up
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("stall limit did not bound the wait")
	}
	if waited < 25*time.Millisecond {
		t.Fatalf("waited %v, expected ~StallLimit", waited)
	}
}

func TestPolicyDefaults(t *testing.T) {
	c := New(Policy{Model: SSP})
	p := c.Policy()
	if p.Bound == 0 || p.StallPoll == 0 || p.StallLimit == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}
