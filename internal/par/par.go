// Package par provides the bounded worker pools shared by MALT's hot
// communication paths. Two shapes of work run on the same primitive:
//
//   - Sticky streams: the scatter pipeline maps each destination rank to a
//     fixed worker (key % workers), preserving per-destination FIFO order —
//     batches for one peer never reorder, batches for different peers
//     proceed in parallel.
//   - Fan-out/join: the gather engine fans per-sender snapshot+decode tasks
//     and per-chunk fold tasks across the pool and joins them with a Group
//     before touching the results.
//
// A Pool owns one goroutine and one bounded FIFO queue per worker. Submit
// blocks when the selected worker's queue is full — that back-pressure is
// deliberate (it is the sender-side flow control of paper §3.1), so pool
// users must never submit from inside a task targeting the same key, and
// tasks must not block on each other except through a Group owned by a
// non-worker goroutine.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when New is given n <= 0:
// min(GOMAXPROCS, 8) — enough to cover the fan-outs that matter (paper
// topologies have single-digit in-degree per rank) without oversubscribing
// small CI machines.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// DefaultQueueDepth is the per-worker queue capacity used when New is
// given depth <= 0.
const DefaultQueueDepth = 128

// Pool is a fixed set of workers with per-worker bounded FIFO queues.
type Pool struct {
	queues []chan func()
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New creates a pool of n workers (n <= 0 selects DefaultWorkers) whose
// queues hold depth pending tasks each (depth <= 0 selects
// DefaultQueueDepth). The workers run until Close.
func New(n, depth int) *Pool {
	if n <= 0 {
		n = DefaultWorkers()
	}
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	p := &Pool{queues: make([]chan func(), n)}
	for i := range p.queues {
		ch := make(chan func(), depth)
		p.queues[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range ch {
				fn()
			}
		}()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.queues) }

// Submit enqueues fn on the worker selected by key. Equal keys always land
// on the same worker, so tasks sharing a key run in submission order
// (sticky FIFO); unrelated keys spread across workers. Submit blocks while
// the selected worker's queue is full. Submitting to a closed pool panics
// (a send on a closed channel), matching the pipeline contract that
// producers are stopped before their pool.
func (p *Pool) Submit(key int, fn func()) {
	if key < 0 {
		key = -key
	}
	p.queues[key%len(p.queues)] <- fn
}

// Close waits for every queued task to finish and stops the workers. The
// pool is unusable afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.queues {
		close(ch)
	}
	p.wg.Wait()
}

// Group joins a fan-out of tasks submitted to a pool. The zero value is
// ready to use with its pool set via NewGroup. Go may be called from one
// goroutine only; Wait blocks until every task submitted through Go has
// finished.
type Group struct {
	pool *Pool
	wg   sync.WaitGroup
	next int
}

// NewGroup returns a Group that fans out over p.
func (p *Pool) NewGroup() *Group { return &Group{pool: p} }

// Go submits fn to the group's pool on the next worker in round-robin
// order and tracks it for Wait.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	key := g.next
	g.next++
	g.pool.Submit(key, func() {
		defer g.wg.Done()
		fn()
	})
}

// Wait blocks until all tasks submitted via Go have completed.
func (g *Group) Wait() { g.wg.Wait() }
