package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStickyFIFO: tasks sharing a key must execute in submission order even
// with many workers racing.
func TestStickyFIFO(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	const keys, perKey = 8, 200
	var mu sync.Mutex
	got := make(map[int][]int)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			k, i := k, i
			wg.Add(1)
			p.Submit(k, func() {
				defer wg.Done()
				mu.Lock()
				got[k] = append(got[k], i)
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if len(got[k]) != perKey {
			t.Fatalf("key %d: %d tasks ran, want %d", k, len(got[k]), perKey)
		}
		for i, v := range got[k] {
			if v != i {
				t.Fatalf("key %d: task %d ran at position %d (FIFO violated)", k, v, i)
			}
		}
	}
}

// TestGroupJoin: Wait must observe every task's effects.
func TestGroupJoin(t *testing.T) {
	p := New(0, 0) // defaults
	defer p.Close()
	if p.Size() != DefaultWorkers() {
		t.Fatalf("Size() = %d, want %d", p.Size(), DefaultWorkers())
	}
	var sum atomic.Int64
	g := p.NewGroup()
	for i := 1; i <= 100; i++ {
		i := i
		g.Go(func() { sum.Add(int64(i)) })
	}
	g.Wait()
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	// A group is reusable after Wait.
	g.Go(func() { sum.Add(1) })
	g.Wait()
	if got := sum.Load(); got != 5051 {
		t.Fatalf("sum after reuse = %d, want 5051", got)
	}
}

// TestCloseDrains: Close must run every already-submitted task.
func TestCloseDrains(t *testing.T) {
	p := New(2, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(i, func() { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("%d tasks ran before Close returned, want 50", got)
	}
	p.Close() // idempotent
}

// TestNegativeKey: negative keys must map to a valid worker.
func TestNegativeKey(t *testing.T) {
	p := New(3, 4)
	defer p.Close()
	done := make(chan struct{})
	p.Submit(-7, func() { close(done) })
	<-done
}
