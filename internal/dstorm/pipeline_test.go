package dstorm

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/fabric"
)

// newPipelineCluster is newTestCluster with an explicit fabric config (for
// chaos seeding) and the coalescing pipeline enabled on every node.
func newPipelineCluster(t *testing.T, fcfg fabric.Config, opts SegmentOptions, pcfg PipelineConfig) (*Cluster, []*Segment) {
	t.Helper()
	f, err := fabric.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(f)
	if opts.Graph == nil {
		g, err := dataflow.New(dataflow.All, fcfg.Ranks)
		if err != nil {
			t.Fatal(err)
		}
		opts.Graph = g
	}
	segs := make([]*Segment, fcfg.Ranks)
	errs := make([]error, fcfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < fcfg.Ranks; r++ {
		c.Node(r).EnablePipeline(pcfg)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			segs[r], errs[r] = c.Node(r).CreateSegment("grad", opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d CreateSegment: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for r := 0; r < fcfg.Ranks; r++ {
			c.Node(r).DisablePipeline()
		}
	})
	return c, segs
}

// slowFlush is a pipeline config whose byte/count/deadline triggers are far
// out of reach, so only the trigger under test (or an explicit flush) fires.
func slowFlush() PipelineConfig {
	return PipelineConfig{
		Workers:       2,
		MaxBatchBytes: 1 << 30,
		MaxBatchCount: 1 << 20,
		MaxDelay:      time.Hour,
	}
}

func TestPipelineCountFlush(t *testing.T) {
	pcfg := slowFlush()
	pcfg.MaxBatchCount = 4
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2}, SegmentOptions{ObjectSize: 64, QueueLen: 32}, pcfg)
	for i := 0; i < 8; i++ {
		if _, err := segs[0].Scatter([]byte("update"), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	ps := c.Node(0).PipelineStats()
	if ps.Enqueued != 8 || ps.Batches != 2 || ps.FlushCount != 2 {
		t.Fatalf("want 8 enqueued in 2 count-flushed batches, got %+v", ps)
	}
	if ps.WritesSaved != 6 {
		t.Fatalf("want 6 writes saved, got %d", ps.WritesSaved)
	}
	st := c.Fabric().Stats()
	if st.CoalescedRecords() != 8 || st.CoalescedWrites() != 2 || st.WritesSaved() != 6 {
		t.Fatalf("fabric coalescing counters: recs=%d writes=%d saved=%d",
			st.CoalescedRecords(), st.CoalescedWrites(), st.WritesSaved())
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 8 {
		t.Fatalf("receiver got %d updates, want 8", len(ups))
	}
}

func TestPipelineByteFlush(t *testing.T) {
	pcfg := slowFlush()
	pcfg.MaxBatchBytes = 200 // header(20)+64 per record → third record trips it
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2}, SegmentOptions{ObjectSize: 64, QueueLen: 32}, pcfg)
	payload := make([]byte, 64)
	for i := 0; i < 3; i++ {
		//maltlint:allow bufretain -- re-posts one read-only buffer to trip the byte-cap flush; Scatter encodes it synchronously
		if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	ps := c.Node(0).PipelineStats()
	if ps.FlushBytes != 1 {
		t.Fatalf("want 1 byte-budget flush, got %+v", ps)
	}
}

func TestPipelineDeadlineFlush(t *testing.T) {
	pcfg := slowFlush()
	pcfg.MaxDelay = 2 * time.Millisecond
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2}, SegmentOptions{ObjectSize: 64, QueueLen: 32}, pcfg)
	if _, err := segs[0].Scatter([]byte("late"), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Node(0).PipelineStats().FlushDeadline == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("deadline flush never fired: %+v", c.Node(0).PipelineStats())
		}
		time.Sleep(time.Millisecond) //maltlint:allow rawsleep -- bounded poll for the deadline-timer flush to fire; no fabric retry involved
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	if ups, err := segs[1].Gather(GatherAllNew); err != nil || len(ups) != 1 {
		t.Fatalf("gather after deadline flush: %d updates, err=%v", len(ups), err)
	}
}

func TestPipelineExplicitFlushAndDrain(t *testing.T) {
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2}, SegmentOptions{ObjectSize: 64, QueueLen: 32}, slowFlush())
	if _, err := segs[0].Scatter([]byte("a"), 1); err != nil {
		t.Fatal(err)
	}
	c.Node(0).Flush()
	if _, err := segs[0].Scatter([]byte("b"), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	ps := c.Node(0).PipelineStats()
	if ps.FlushExplicit != 2 || ps.Batches != 2 {
		t.Fatalf("want 2 explicit flushes, got %+v", ps)
	}
	if ups, err := segs[1].Gather(GatherAllNew); err != nil || len(ups) != 2 {
		t.Fatalf("gather after drain: %d updates, err=%v", len(ups), err)
	}
}

// TestPipelineBarrierDrains checks the consistency contract: once a
// segment Barrier releases, every rank's pre-barrier scatters are visible
// at their receivers even though Scatter returned at enqueue.
func TestPipelineBarrierDrains(t *testing.T) {
	const ranks, K = 3, 10
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: ranks},
		SegmentOptions{ObjectSize: 16, QueueLen: 2 * K}, slowFlush())
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < K; i++ {
				if _, err := segs[r].Scatter([]byte{byte(r)}, uint64(i+1)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := segs[r].Barrier(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for r := 0; r < ranks; r++ {
		ups, err := segs[r].Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		if want := (ranks - 1) * K; len(ups) != want {
			t.Fatalf("rank %d sees %d updates after barrier, want %d", r, len(ups), want)
		}
	}
	_ = c
}

// TestPipelineUnderChaosDrops runs batched async scatter against a seeded
// lossy fabric and asserts that once Drain returns every update arrived
// exactly once: nothing lost (retries absorbed every drop) and nothing
// double-folded (a retried batch overwrites its own ring slots).
func TestPipelineUnderChaosDrops(t *testing.T) {
	const ranks, K = 4, 40
	pcfg := PipelineConfig{Workers: 2, MaxBatchCount: 4, MaxBatchBytes: 1 << 30, MaxDelay: time.Hour}
	c, segs := newPipelineCluster(t, fabric.Config{
		Ranks: ranks,
		Chaos: &fabric.ChaosConfig{Seed: 42, Default: fabric.LinkFault{DropProb: 0.3}},
	}, SegmentOptions{ObjectSize: 16, QueueLen: 2 * K}, pcfg)
	for r := 0; r < ranks; r++ {
		c.Node(r).SetRetryPolicy(RetryPolicy{
			MaxAttempts: 100,
			Backoff:     time.Microsecond,
			Deadline:    30 * time.Second,
		})
	}

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 12)
			for i := 0; i < K; i++ {
				binary.LittleEndian.PutUint32(buf[0:4], uint32(r))
				binary.LittleEndian.PutUint64(buf[4:12], uint64(i+1))
				//maltlint:allow bufretain -- Scatter copies the payload into its encode buffer before returning, so per-iteration reuse cannot tear
				if _, err := segs[r].Scatter(buf, uint64(i+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for r := 0; r < ranks; r++ {
		if err := c.Node(r).Drain(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < ranks; r++ {
		rs := c.Node(r).RetryStats()
		if rs.Exhausted != 0 {
			t.Fatalf("rank %d exhausted %d batches; drops should have been absorbed", r, rs.Exhausted)
		}
		if rs.Retries == 0 {
			t.Fatalf("rank %d saw no retries under 30%% drop — chaos not exercised", r)
		}
		if fails := c.Node(r).AsyncFailures(); len(fails) != 0 {
			t.Fatalf("rank %d reported async failures %v on a healed fabric", r, fails)
		}
	}

	for r := 0; r < ranks; r++ {
		ups, err := segs[r].Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly-once accounting per sender: sequence i from sender s must
		// appear exactly once, carrying the payload s wrote at i.
		seen := make(map[int]map[uint64]int)
		for _, u := range ups {
			from := int(binary.LittleEndian.Uint32(u.Data[0:4]))
			idx := binary.LittleEndian.Uint64(u.Data[4:12])
			if from != u.From || idx != u.Seq {
				t.Fatalf("rank %d: update header (from=%d seq=%d) disagrees with payload (from=%d idx=%d)",
					r, u.From, u.Seq, from, idx)
			}
			if seen[from] == nil {
				seen[from] = make(map[uint64]int)
			}
			seen[from][idx]++
		}
		for s := 0; s < ranks; s++ {
			if s == r {
				continue
			}
			for i := uint64(1); i <= K; i++ {
				switch n := seen[s][i]; n {
				case 1:
				case 0:
					t.Fatalf("rank %d lost update %d from sender %d", r, i, s)
				default:
					t.Fatalf("rank %d folded update %d from sender %d %d times", r, i, s, n)
				}
			}
		}
	}
}

// TestPipelineUnderBlackout parks every update behind a full-rank blackout,
// lifts it, and asserts Drain still delivers everything exactly once — the
// retry loop, not the fault layer, absorbs the outage.
func TestPipelineUnderBlackout(t *testing.T) {
	const ranks, K = 3, 8
	pcfg := PipelineConfig{Workers: 2, MaxBatchCount: 4, MaxBatchBytes: 1 << 30, MaxDelay: time.Hour}
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: ranks},
		SegmentOptions{ObjectSize: 16, QueueLen: 2 * K}, pcfg)
	for r := 0; r < ranks; r++ {
		c.Node(r).SetRetryPolicy(RetryPolicy{
			MaxAttempts: 1 << 20,
			Backoff:     100 * time.Microsecond,
			BackoffMult: 1,
			Deadline:    30 * time.Second,
		})
	}
	if err := simFab(c).SetRankBlackout(1, true); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < K; i++ {
			if _, err := segs[r].Scatter([]byte{byte(r)}, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		c.Node(r).Flush() // batches now sit in worker retry loops
	}
	if err := simFab(c).SetRankBlackout(1, false); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		if err := c.Node(r).Drain(); err != nil {
			t.Fatal(err)
		}
		if rs := c.Node(r).RetryStats(); rs.Exhausted != 0 {
			t.Fatalf("rank %d exhausted %d batches across the blackout", r, rs.Exhausted)
		}
	}
	for r := 0; r < ranks; r++ {
		ups, err := segs[r].Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		if want := (ranks - 1) * K; len(ups) != want {
			t.Fatalf("rank %d sees %d updates after blackout heal, want %d", r, len(ups), want)
		}
	}
}

// TestPipelineSuspicionPreserved: batching must not hide real failures.
// Writes to a dead rank fail permanently inside the worker pool and must
// surface through AsyncFailures — the PR-1 suspicion feed.
func TestPipelineSuspicionPreserved(t *testing.T) {
	const ranks = 3
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: ranks},
		SegmentOptions{ObjectSize: 16, QueueLen: 8}, slowFlush())
	if err := c.Fabric().Kill(1); err != nil {
		t.Fatal(err)
	}
	if _, err := segs[0].Scatter([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	fails := c.Node(0).AsyncFailures()
	if len(fails) != 1 || fails[0] != 1 {
		t.Fatalf("want async failure against rank 1, got %v", fails)
	}
	if ps := c.Node(0).PipelineStats(); ps.Failed == 0 {
		t.Fatalf("pipeline Failed counter not incremented: %+v", ps)
	}
}

// TestPipelineWorkerPoolConcurrency hammers the coalescer from all ranks at
// once with deadline flushes racing count flushes and interleaved explicit
// Flush/Drain calls. Run under -race this is the worker-pool data-race
// check; the final accounting asserts delivery stayed exact.
func TestPipelineWorkerPoolConcurrency(t *testing.T) {
	const ranks, K = 4, 200
	pcfg := PipelineConfig{Workers: 4, MaxBatchCount: 8, MaxBatchBytes: 1 << 30, MaxDelay: 50 * time.Microsecond, QueueDepth: 16}
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: ranks},
		SegmentOptions{ObjectSize: 16, QueueLen: 2 * K}, pcfg)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < K; i++ {
				if _, err := segs[r].Scatter([]byte{byte(r)}, uint64(i+1)); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					c.Node(r).Flush()
				}
				if i%43 == 0 {
					if err := c.Node(r).Drain(); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := c.Node(r).Drain(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for r := 0; r < ranks; r++ {
		ups, err := segs[r].Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		if want := (ranks - 1) * K; len(ups) != want {
			t.Fatalf("rank %d folded %d updates, want %d", r, len(ups), want)
		}
		ps := c.Node(r).PipelineStats()
		if ps.Enqueued != uint64((ranks-1)*K) {
			t.Fatalf("rank %d enqueued %d records, want %d", r, ps.Enqueued, (ranks-1)*K)
		}
		if ps.QueuePeak == 0 {
			t.Fatalf("rank %d queue peak never recorded", r)
		}
	}
}

// TestPipelineDisableFallsBack: after DisablePipeline the scatter path must
// revert to synchronous writes and still deliver.
func TestPipelineDisableFallsBack(t *testing.T) {
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2},
		SegmentOptions{ObjectSize: 16, QueueLen: 8}, slowFlush())
	if _, err := segs[0].Scatter([]byte("before"), 1); err != nil {
		t.Fatal(err)
	}
	c.Node(0).DisablePipeline()
	if c.Node(0).PipelineEnabled() {
		t.Fatal("pipeline still enabled after DisablePipeline")
	}
	if _, err := segs[0].Scatter([]byte("after"), 2); err != nil {
		t.Fatal(err)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("want both pre-disable (drained) and post-disable updates, got %d", len(ups))
	}
}
