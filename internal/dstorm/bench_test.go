package dstorm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/fabric"
)

func benchCluster(b *testing.B, ranks int, opts SegmentOptions) []*Segment {
	return benchClusterFabric(b, fabric.Config{Ranks: ranks}, opts)
}

func benchClusterFabric(b *testing.B, fcfg fabric.Config, opts SegmentOptions) []*Segment {
	b.Helper()
	ranks := fcfg.Ranks
	f, err := fabric.New(fcfg)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(f)
	if opts.Graph == nil {
		g, err := dataflow.New(dataflow.All, ranks)
		if err != nil {
			b.Fatal(err)
		}
		opts.Graph = g
	}
	segs := make([]*Segment, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := c.Node(r).CreateSegment("bench", opts)
			if err != nil {
				b.Error(err)
				return
			}
			segs[r] = s
		}(r)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}
	return segs
}

// BenchmarkScatterLatency measures one scatter of a model-sized update to
// a single peer (the paper's 1–3 µs RDMA write, here a locked memcpy).
func BenchmarkScatterLatency(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(byteSize(size), func(b *testing.B) {
			segs := benchCluster(b, 2, SegmentOptions{ObjectSize: size, QueueLen: 2})
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//maltlint:allow bufretain -- steady-state benchmark re-posts one read-only buffer; Scatter encodes it synchronously
				if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Fan-out variants with the modeled wire time imposed (DelaySpin, 3 µs
	// base latency — the upper end of the paper's measured InfiniBand
	// range): the sender pays base latency per write, exactly where
	// per-destination coalescing wins. batched merges 16 small updates per
	// peer into one fabric write, so the latency is paid once per batch.
	const fanRanks = 8 // fan-out 7, all-to-all
	for _, size := range []int{1 << 10, 4 << 10} {
		for _, batched := range []bool{false, true} {
			mode := "sync"
			if batched {
				mode = "batched"
			}
			b.Run(fmt.Sprintf("fanout%d-%s-%s", fanRanks-1, byteSize(size), mode), func(b *testing.B) {
				segs := benchClusterFabric(b,
					fabric.Config{Ranks: fanRanks, Delay: fabric.DelaySpin, Latency: 3 * time.Microsecond},
					SegmentOptions{ObjectSize: size, QueueLen: 4})
				node := segs[0].Node()
				if batched {
					node.EnablePipeline(PipelineConfig{
						MaxBatchCount: 16,
						MaxBatchBytes: 1 << 30,
						MaxDelay:      time.Hour,
					})
					defer node.DisablePipeline()
				}
				payload := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					//maltlint:allow bufretain -- steady-state benchmark re-posts one read-only buffer; Scatter encodes it synchronously
					if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
						b.Fatal(err)
					}
				}
				if err := node.Drain(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkGatherLatency measures the local fold side.
func BenchmarkGatherLatency(b *testing.B) {
	const size = 1 << 16
	segs := benchCluster(b, 2, SegmentOptions{ObjectSize: size, QueueLen: 2})
	payload := make([]byte, size)
	b.SetBytes(size)
	b.ReportAllocs() // gather scratch is pooled: steady state must stay at 0 allocs/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//maltlint:allow bufretain -- steady-state benchmark re-posts one read-only buffer; Scatter encodes it synchronously
		if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
		if _, err := segs[1].Gather(GatherLatest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrier measures a full-cluster barrier round.
func BenchmarkBarrier(b *testing.B) {
	for _, ranks := range []int{2, 8} {
		b.Run(byteSize(ranks)+"ranks", func(b *testing.B) {
			segs := benchCluster(b, ranks, SegmentOptions{ObjectSize: 8})
			b.ResetTimer()
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if err := segs[r].Barrier(); err != nil {
							b.Error(err)
							return
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// BenchmarkChunkedVsAtomicWrite quantifies the cost of the chunked
// (torn-read-capable) deposit against a single-lock atomic copy.
func BenchmarkChunkedVsAtomicWrite(b *testing.B) {
	const size = 1 << 16
	for name, chunk := range map[string]int{"chunked4k": 4096, "atomic": -1} {
		b.Run(name, func(b *testing.B) {
			segs := benchCluster(b, 2, SegmentOptions{ObjectSize: size, QueueLen: 2, ChunkSize: chunk})
			payload := make([]byte, size)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//maltlint:allow bufretain -- steady-state benchmark re-posts one read-only buffer; Scatter encodes it synchronously
				if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return "1MiB"
	case n >= 1<<16:
		return "64KiB"
	case n >= 4<<10:
		return "4KiB"
	case n >= 1<<10:
		return "1KiB"
	default:
		if n == 2 {
			return "2"
		}
		return "8"
	}
}
