package dstorm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/fabric"
)

// newChaosCluster is newTestCluster over a fabric with a chaos model.
func newChaosCluster(t *testing.T, ranks int, chaos fabric.ChaosConfig, opts SegmentOptions) (*Cluster, []*Segment) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks, Chaos: &chaos})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(f)
	if opts.Graph == nil {
		g, err := dataflow.New(dataflow.All, ranks)
		if err != nil {
			t.Fatal(err)
		}
		opts.Graph = g
	}
	segs := make([]*Segment, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			segs[r], errs[r] = c.Node(r).CreateSegment("grad", opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d CreateSegment: %v", r, err)
		}
	}
	return c, segs
}

// A 50% drop rate is far above anything the retry budget cannot absorb:
// with 6 attempts the per-write failure probability is ~1.6%, and the test
// scatters enough times that the expected number of exhausted writes over a
// clean run is visible in the stats while deliveries still dominate.
func TestScatterRetriesTransientDrops(t *testing.T) {
	c, segs := newChaosCluster(t, 2,
		fabric.ChaosConfig{Seed: 11, Default: fabric.LinkFault{DropProb: 0.5}},
		SegmentOptions{ObjectSize: 8, QueueLen: 64})
	c.Node(0).SetRetryPolicy(RetryPolicy{MaxAttempts: 12, Backoff: time.Microsecond})

	delivered := 0
	for i := 1; i <= 40; i++ {
		failed, err := segs[0].Scatter([]byte("payload!"), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(failed) == 0 {
			delivered++
		}
	}
	if delivered < 38 {
		t.Fatalf("only %d/40 scatters delivered under 50%% drop with retries", delivered)
	}
	st := c.Node(0).RetryStats()
	if st.Retries == 0 || st.Recovered == 0 {
		t.Fatalf("retry stats show no transient absorption: %+v", st)
	}
	if st.Attempts <= 40 {
		t.Fatalf("Attempts = %d, want > scatter count (retries happened)", st.Attempts)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != delivered {
		t.Fatalf("receiver got %d updates, sender delivered %d", len(ups), delivered)
	}
}

func TestScatterBlackoutExhaustsRetries(t *testing.T) {
	c, segs := newChaosCluster(t, 2, fabric.ChaosConfig{Seed: 3},
		SegmentOptions{ObjectSize: 8})
	c.Node(0).SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond})
	if err := simFab(c).SetRankBlackout(1, true); err != nil {
		t.Fatal(err)
	}
	failed, err := segs[0].Scatter([]byte("payload!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed = %v, want [1]", failed)
	}
	st := c.Node(0).RetryStats()
	if st.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", st.Exhausted)
	}
	// Blackout lifts: the same path recovers without any rebuild.
	if err := simFab(c).SetRankBlackout(1, false); err != nil {
		t.Fatal(err)
	}
	failed, err = segs[0].Scatter([]byte("payload!"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("post-blackout scatter failed: %v", failed)
	}
}

func TestRetryDoesNotMaskPermanentFailure(t *testing.T) {
	c, segs := newChaosCluster(t, 3,
		fabric.ChaosConfig{Seed: 5, Default: fabric.LinkFault{DropProb: 0.2}},
		SegmentOptions{ObjectSize: 8})
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	before := c.Node(0).RetryStats()
	failed, err := segs[0].Scatter([]byte("payload!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range failed {
		if p == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead peer missing from failed list: %v", failed)
	}
	// The write to the dead rank must not have consumed retries.
	after := c.Node(0).RetryStats()
	if after.Exhausted != before.Exhausted {
		t.Fatalf("permanent failure counted as exhausted transient: %+v", after)
	}
}

func TestRetryDeadlineBoundsOneWrite(t *testing.T) {
	c, segs := newChaosCluster(t, 2, fabric.ChaosConfig{Seed: 4},
		SegmentOptions{ObjectSize: 8})
	c.Node(0).SetRetryPolicy(RetryPolicy{
		MaxAttempts: 1 << 20, // effectively unbounded attempts
		Backoff:     200 * time.Microsecond,
		Deadline:    2 * time.Millisecond,
	})
	if err := simFab(c).SetRankBlackout(1, true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	failed, err := segs[0].Scatter([]byte("payload!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline did not bound the write: took %v", elapsed)
	}
	if len(failed) != 1 {
		t.Fatalf("failed = %v, want the blacked-out peer", failed)
	}
}

func TestAsyncSendRetriesTransients(t *testing.T) {
	c, segs := newChaosCluster(t, 2,
		fabric.ChaosConfig{Seed: 6, Default: fabric.LinkFault{DropProb: 0.5}},
		SegmentOptions{ObjectSize: 8, QueueLen: 64})
	n := c.Node(0)
	n.SetRetryPolicy(RetryPolicy{MaxAttempts: 12, Backoff: time.Microsecond})
	n.EnableAsyncSend(16)
	for i := 1; i <= 30; i++ {
		if _, err := segs[0].Scatter([]byte("payload!"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n.DisableAsyncSend() // flushes the queue
	st := n.RetryStats()
	if st.Retries == 0 {
		t.Fatalf("async path did not retry: %+v", st)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if want := 30 - int(st.Exhausted); len(ups) != want {
		t.Fatalf("receiver got %d updates, want %d (30 - %d exhausted)",
			len(ups), want, st.Exhausted)
	}
	if fails := n.AsyncFailures(); int(st.Exhausted) != len(fails) && st.Exhausted > 0 && len(fails) == 0 {
		t.Fatalf("exhausted async writes not surfaced: stats %+v, failures %v", st, fails)
	}
}

func TestDefaultRetryPolicy(t *testing.T) {
	f, err := fabric.New(fabric.Config{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCluster(f).Node(0).Retry()
	if p.MaxAttempts != 4 || p.Backoff <= 0 || p.BackoffMult < 1 || p.Deadline <= 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if errors.Is(nil, fabric.ErrTransient) {
		t.Fatal("sanity")
	}
}
