package dstorm

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQueueSemanticsProperty drives a random interleaving of scatters and
// gathers between two ranks and checks the receive-queue invariants:
//
//  1. gathered sequence numbers are strictly increasing (no duplicates, no
//     reordering);
//  2. after any burst of k scatters, a gather returns min(k, queueLen)
//     updates — the ring overwrites the oldest, never the newest;
//  3. the freshest scattered payload is always among the gathered ones.
func TestQueueSemanticsProperty(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qlen := 1 + rng.Intn(6)
		_, segs := propCluster(t, qlen)
		var (
			lastSeq   uint64
			sent      uint64
			pending   int
			lastValue byte
		)
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				sent++
				lastValue = byte(sent)
				if _, err := segs[0].Scatter([]byte{lastValue}, sent); err != nil {
					t.Errorf("scatter: %v", err)
					return false
				}
				if pending < qlen {
					pending++
				}
			} else {
				ups, err := segs[1].Gather(GatherAllNew)
				if err != nil {
					t.Errorf("gather: %v", err)
					return false
				}
				if len(ups) != pending {
					t.Errorf("seed %d: gathered %d, want %d (qlen %d)", seed, len(ups), pending, qlen)
					return false
				}
				for _, u := range ups {
					if u.Seq <= lastSeq {
						t.Errorf("seed %d: seq %d not increasing past %d", seed, u.Seq, lastSeq)
						return false
					}
					lastSeq = u.Seq
				}
				if len(ups) > 0 {
					newest := ups[len(ups)-1]
					if newest.Seq != sent || newest.Data[0] != lastValue {
						t.Errorf("seed %d: freshest update lost (seq %d vs sent %d)", seed, newest.Seq, sent)
						return false
					}
				}
				pending = 0
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func propCluster(t *testing.T, qlen int) (*Cluster, []*Segment) {
	t.Helper()
	return newTestCluster(t, 2, SegmentOptions{ObjectSize: 4, QueueLen: qlen})
}

// TestAsyncSendBackPressure verifies the sender-side queue blocks the
// producer when full (§3.1's back-pressure) rather than dropping sends.
func TestAsyncSendBackPressure(t *testing.T) {
	c, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 1 << 16, QueueLen: 2})
	// Make the "NIC" slow by imposing a delay on every write.
	// (Delay knobs live on the fabric config; instead, saturate by volume:
	// a tiny queue plus many large sends must not lose the newest data.)
	n := c.Node(0)
	n.EnableAsyncSend(1)
	payload := make([]byte, 1<<16)
	const sends = 50
	start := time.Now()
	for i := 1; i <= sends; i++ {
		//maltlint:allow bufretain -- async send copies the payload before queueing; mutate-then-repost is the overwrite pressure under test
		payload[0] = byte(i)
		//maltlint:allow bufretain -- async send copies the payload before queueing; mutate-then-repost is the overwrite pressure under test
		if _, err := segs[0].Scatter(payload, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n.DisableAsyncSend() // flush
	if time.Since(start) > 30*time.Second {
		t.Fatal("async send pathologically slow")
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("nothing delivered")
	}
	last := ups[len(ups)-1]
	if last.Seq != sends || last.Data[0] != byte(sends) {
		t.Fatalf("newest send lost: seq %d", last.Seq)
	}
}

// TestHeaderEncoding pins the wire header layout (seq, iter, length) that
// both the queue slots and torn-read detection depend on.
func TestHeaderEncoding(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	if _, err := segs[0].Scatter([]byte{1, 2, 3}, 77); err != nil {
		t.Fatal(err)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("ups = %d", len(ups))
	}
	u := ups[0]
	if u.Seq != 1 || u.Iter != 77 || len(u.Data) != 3 {
		t.Fatalf("header fields wrong: %+v", u)
	}
	// Header size constant is load-bearing for the codec.
	var buf [headerSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], 1)
	binary.LittleEndian.PutUint64(buf[8:16], 77)
	binary.LittleEndian.PutUint32(buf[16:20], 3)
	if headerSize != 20 {
		t.Fatalf("headerSize = %d", headerSize)
	}
}
