// Package dstorm implements DiSTributed One-sided Remote Memory, the shared
// memory abstraction underneath MALT (paper §3.1).
//
// Every rank creates named segments over the fabric. Creating a segment is a
// collective operation: all ranks in the dataflow create it, and each rank
// allocates a receive queue *per sender* so that concurrent incoming model
// updates from different senders never conflict and never require receiver
// CPU for write-write conflict resolution. A sender's Scatter deposits its
// update into its own queue slot on every receiver named by the dataflow
// graph; a receiver's Gather is a purely local read that folds whatever has
// arrived. When a sender outruns the consumer, the default behaviour is to
// overwrite the oldest unconsumed item in the ring — model updates are
// approximate, and MALT trades freshness for never blocking the fast path.
//
// Consistency (paper §3.2): writes are performed in chunks, as a real NIC
// deposits bytes, so a reader that ignores the version protocol can observe
// a torn update (old and new bytes mixed). GatherWeak exposes exactly that;
// Gather (the default, "atomic gather" in the paper) uses a seqlock-style
// version word per slot and retries until it has a consistent snapshot.
// Every update carries the sender's iteration count in its header so
// bounded-staleness policies can stall on or skip stale peers.
package dstorm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"malt/internal/dataflow"
)

// Errors returned by dstorm operations.
var (
	// ErrTooLarge is returned when a scattered payload exceeds the
	// segment's object size.
	ErrTooLarge = errors.New("dstorm: payload exceeds segment object size")
	// ErrClosed is returned by operations on a destroyed segment.
	ErrClosed = errors.New("dstorm: segment closed")
)

// DefaultQueueLen is the per-sender receive-queue depth when
// SegmentOptions.QueueLen is zero.
const DefaultQueueLen = 4

// DefaultChunkSize is the write granularity modeling a NIC's non-atomic
// deposit, used when SegmentOptions.ChunkSize is zero.
const DefaultChunkSize = 4096

// headerSize is seq(8) + iter(8) + len(4) prepended to every update.
const headerSize = 20

// SegmentOptions configures a segment at collective creation time.
type SegmentOptions struct {
	// ObjectSize is the maximum payload size, in bytes, of one update.
	ObjectSize int
	// QueueLen is the per-sender receive-queue depth (ring length).
	// Defaults to DefaultQueueLen.
	QueueLen int
	// Graph is the dataflow: an edge A→B means A's scatters land on B.
	Graph *dataflow.Graph
	// ChunkSize is the granularity of the simulated non-atomic RDMA
	// deposit. Defaults to DefaultChunkSize. Set negative for fully atomic
	// writes (disables torn reads entirely; used in ablations).
	ChunkSize int
	// SkipCreationBarrier registers the segment without waiting for the
	// collective creation barrier. Only the elastic-membership rejoin path
	// sets it: the surviving ranks created the segment long ago and will
	// never re-enter its creation barrier, so a rejoining rank registers
	// its receive rings and proceeds straight to the next data barrier.
	SkipCreationBarrier bool
}

func (o *SegmentOptions) setDefaults() error {
	if o.ObjectSize <= 0 {
		return fmt.Errorf("dstorm: ObjectSize must be positive, got %d", o.ObjectSize)
	}
	if o.Graph == nil {
		return errors.New("dstorm: SegmentOptions.Graph is required")
	}
	if o.QueueLen == 0 {
		o.QueueLen = DefaultQueueLen
	}
	if o.QueueLen < 1 {
		return fmt.Errorf("dstorm: QueueLen must be >= 1, got %d", o.QueueLen)
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	return nil
}

// Update is one model update read out of a receive queue. Data aliases an
// internal buffer that remains valid until the next Gather/GatherWeak call
// on the same segment; callers that need it longer must copy.
type Update struct {
	// From is the sender's rank.
	From int
	// Seq is the sender's per-segment sequence number (1-based).
	Seq uint64
	// Iter is the sender's iteration count, carried in the update header
	// for staleness policies.
	Iter uint64
	// Data is the payload.
	Data []byte
	// Torn reports that the payload was observed mid-write and may mix old
	// and new bytes. Always false for Gather; possible for GatherWeak.
	Torn bool
}

// GatherMode selects which queued updates a gather consumes.
type GatherMode int

const (
	// GatherAllNew consumes every unconsumed update from every sender, in
	// sequence order (the default: the paper's gather folds "all received
	// updates").
	GatherAllNew GatherMode = iota
	// GatherLatest consumes only the freshest update per sender, skipping
	// over older queued items.
	GatherLatest
)

// Segment is one rank's view of a collectively created dstorm segment.
type Segment struct {
	node *Node
	name string
	key  string // segKey(name), precomputed for the scatter hot path
	opts SegmentOptions

	mu            sync.Mutex
	graph         *dataflow.Graph
	send          []int          // current send peer list (rebuilt on failure)
	allowed       map[int]bool   // ScatterTo membership cache over send; nil = stale
	queues        map[int]*queue // senderRank → local receive queue
	seq           uint64         // local scatter sequence
	iter          uint64         // local iteration counter attached to scatters
	consumedTotal uint64         // updates returned by gathers (for Stats)
	closed        bool

	encBuf      []byte // scatter encode buffer
	sendScratch []int  // per-scatter snapshot of send, reused across calls

	// Gather-side scratch, reused across gathers to keep the steady state
	// allocation-free. Only the owning rank's training goroutine gathers, so
	// no lock is needed beyond the snapshot of s.queues taken under mu.
	senderScratch []senderQ
	updOut        []Update
}

// senderQ pairs a sender rank with its receive queue for one gather pass.
type senderQ struct {
	from int
	q    *queue
}

// queue is the per-sender receive ring living in this rank's registered
// memory. Slots are written by the fabric on sender goroutines and read
// locally by gather.
type queue struct {
	slots []slot
	// consumed is the highest sequence number this receiver has consumed.
	// Guarded by consumedMu; only the local rank touches it.
	consumedMu sync.Mutex
	consumed   uint64
	// overwritten counts updates that were lapped in the ring before this
	// receiver consumed them (the freshness-over-completeness trade).
	overwritten uint64
	// Gather scratch owned by this queue (guarded by consumedMu): snapshot
	// buffers and decoded Update views, reused across gathers. Per-queue
	// rather than per-segment so the parallel gather engine can drain every
	// sender's ring concurrently without sharing buffers.
	bufs [][]byte
	ups  []Update
}

// Stats are a segment's local receive-side counters.
type Stats struct {
	// Consumed is the number of updates returned by gathers.
	Consumed uint64
	// Overwritten is the number of updates lost to ring overwrites before
	// they were consumed. High values mean the consumer lags its senders —
	// expected and harmless under ASP, a red flag under BSP.
	Overwritten uint64
}

// Stats returns the segment's receive-side counters, summed over senders.
func (s *Segment) Stats() Stats {
	s.mu.Lock()
	queues := make([]*queue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	consumed := s.consumedTotal
	s.mu.Unlock()
	out := Stats{Consumed: consumed}
	for _, q := range queues {
		q.consumedMu.Lock()
		out.Overwritten += q.overwritten
		q.consumedMu.Unlock()
	}
	return out
}

// slot is one ring entry. version is a seqlock: odd while a chunked write
// is in flight. All fields are guarded by mu; chunked writers release mu
// between chunks so weak readers can observe torn payloads without a data
// race.
type slot struct {
	mu      sync.Mutex
	version uint64
	seq     uint64
	iter    uint64
	n       int
	data    []byte
}

// name of the fabric registration for a segment.
func segKey(name string) string { return "dstorm/" + name }

// CreateSegment collectively creates (or attaches to) the named segment.
// Every rank in the dataflow graph must call CreateSegment with identical
// options; the call blocks until all live ranks have done so, mirroring the
// synchronous segment creation in the paper. The per-sender receive queues
// are allocated and registered with the fabric before the creation barrier
// releases, so no scatter can beat a receiver's registration.
func (n *Node) CreateSegment(name string, opts SegmentOptions) (*Segment, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if opts.Graph.N() != n.cluster.fab.Ranks() {
		return nil, fmt.Errorf("dstorm: graph covers %d ranks but fabric has %d",
			opts.Graph.N(), n.cluster.fab.Ranks())
	}
	if !opts.Graph.Connected() && opts.Graph.N() > 1 {
		return nil, fmt.Errorf("dstorm: dataflow graph is not connected; updates would not disseminate")
	}

	s := &Segment{
		node:   n,
		name:   name,
		key:    segKey(name),
		opts:   opts,
		graph:  opts.Graph,
		queues: make(map[int]*queue),
		encBuf: make([]byte, headerSize+opts.ObjectSize),
	}
	s.send = append([]int(nil), opts.Graph.SendPeers(n.rank)...)
	for _, sender := range opts.Graph.RecvPeers(n.rank) {
		s.queues[sender] = newQueue(opts.QueueLen, opts.ObjectSize)
	}
	if err := n.cluster.fab.Register(n.rank, segKey(name), s.handleWrite); err != nil {
		return nil, err
	}
	// Creation barrier: all live ranks must have registered. A rejoining
	// rank skips it — the standing members passed this barrier when the
	// segment was first created.
	if !opts.SkipCreationBarrier {
		if err := n.cluster.creationBarrier(name, n.rank); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func newQueue(qlen, objSize int) *queue {
	q := &queue{slots: make([]slot, qlen)}
	for i := range q.slots {
		q.slots[i].data = make([]byte, headerSize+objSize)
	}
	return q
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Node returns the endpoint that owns this segment view.
func (s *Segment) Node() *Node { return s.node }

// Options returns the segment's creation options.
func (s *Segment) Options() SegmentOptions { return s.opts }

// SendPeers returns the current send list (post any failure rebuilds).
func (s *Segment) SendPeers() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.send...)
}

// SetIteration sets the iteration count stamped on subsequent scatters.
func (s *Segment) SetIteration(iter uint64) {
	s.mu.Lock()
	s.iter = iter
	s.mu.Unlock()
}

// handleWrite is the fabric write handler: it runs on the *sender's*
// goroutine (one-sided) and deposits the update into the sender's queue.
func (s *Segment) handleWrite(from int, payload []byte) error {
	if len(payload) < headerSize {
		return fmt.Errorf("dstorm: short write (%d bytes) into segment %q", len(payload), s.name)
	}
	s.mu.Lock()
	q := s.queues[from]
	closed := s.closed
	chunk := s.opts.ChunkSize
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if q == nil {
		// A write from a rank outside our receive list: this happens when a
		// zombie (a rank we removed after a failure) comes back. MALT
		// re-registers the interface so zombie writes bounce; we reject.
		return fmt.Errorf("dstorm: segment %q: unexpected sender %d (not in receive list)", s.name, from)
	}
	seq := binary.LittleEndian.Uint64(payload[0:8])
	sl := &q.slots[seq%uint64(len(q.slots))]
	sl.write(payload, chunk)
	return nil
}

// write deposits payload into the slot. If chunk > 0 the copy is performed
// chunk bytes at a time, releasing the slot lock in between, modeling the
// non-atomic deposit of a real NIC: a concurrent weak reader can observe a
// mix of old and new bytes. The version word goes odd for the duration, so
// atomic readers retry.
func (sl *slot) write(payload []byte, chunk int) {
	if chunk <= 0 || chunk >= len(payload) {
		sl.mu.Lock()
		sl.version += 2
		sl.store(payload)
		sl.mu.Unlock()
		return
	}
	sl.mu.Lock()
	sl.version++ // odd: write in flight
	sl.mu.Unlock()
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		sl.mu.Lock()
		copy(sl.data[off:end], payload[off:end])
		sl.mu.Unlock()
	}
	sl.mu.Lock()
	sl.storeHeaderFields(payload)
	sl.version++ // even: write complete
	sl.mu.Unlock()
}

func (sl *slot) store(payload []byte) {
	copy(sl.data, payload)
	sl.storeHeaderFields(payload)
}

func (sl *slot) storeHeaderFields(payload []byte) {
	sl.seq = binary.LittleEndian.Uint64(payload[0:8])
	sl.iter = binary.LittleEndian.Uint64(payload[8:16])
	sl.n = int(binary.LittleEndian.Uint32(payload[16:20]))
}

// readAtomic copies a consistent snapshot of the slot into dst, spinning
// while a chunked write is in flight. It returns the header fields.
func (sl *slot) readAtomic(dst []byte) (seq, iter uint64, n int) {
	for {
		sl.mu.Lock()
		if sl.version%2 == 1 {
			sl.mu.Unlock()
			runtime.Gosched()
			continue
		}
		seq, iter, n = sl.seq, sl.iter, sl.n
		copy(dst[:headerSize+n], sl.data[:headerSize+n])
		sl.mu.Unlock()
		return seq, iter, n
	}
}

// readWeak copies the slot without honouring the version protocol. The
// returned torn flag is true when the snapshot raced a chunked write.
func (sl *slot) readWeak(dst []byte) (seq, iter uint64, n int, torn bool) {
	sl.mu.Lock()
	v0 := sl.version
	seq, iter, n = sl.seq, sl.iter, sl.n
	if n > len(dst)-headerSize {
		n = len(dst) - headerSize
	}
	copy(dst[:headerSize+n], sl.data[:headerSize+n])
	torn = v0%2 == 1
	sl.mu.Unlock()
	return seq, iter, n, torn
}

// peek returns the slot's header without consuming or copying the payload.
func (sl *slot) peek() (seq, iter uint64) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.seq, sl.iter
}

// Scatter sends payload to every peer in the current send list, stamping it
// with the given iteration count. Transient fabric faults (dropped writes,
// blackout windows) are absorbed by the node's bounded retry policy with
// exponential backoff and a per-write deadline; only peers whose writes
// failed permanently (dead, partitioned, re-registered) or kept failing
// transiently until retries were exhausted appear in the returned failed
// list, which the caller's fault monitor feeds into the recovery protocol
// as suspicion evidence. Scatter itself never fails on peer death — that is
// the point of one-sided, peer-to-peer training.
func (s *Segment) Scatter(payload []byte, iter uint64) (failed []int, err error) {
	return s.scatter(nil, payload, iter)
}

// scatter encodes and delivers one update to the given peers (nil = the
// segment's full send list).
func (s *Segment) scatter(peers []int, payload []byte, iter uint64) (failed []int, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if len(payload) > s.opts.ObjectSize {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), s.opts.ObjectSize)
	}
	s.seq++
	seq := s.seq
	it := s.iter
	if iter != 0 {
		it = iter
	}
	if peers == nil {
		// Snapshot the send list into reusable scratch: writeMulti and the
		// pipeline iterate it synchronously and never retain it.
		s.sendScratch = append(s.sendScratch[:0], s.send...)
		peers = s.sendScratch
	}
	buf := s.encBuf[:headerSize+len(payload)]
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint64(buf[8:16], it)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	s.mu.Unlock()

	// Every per-peer failure — unreachable, partitioned, or a peer that
	// closed/re-registered its segment during recovery — is reported to the
	// caller's fault monitor rather than aborting the scatter: peer-to-peer
	// training must survive peer loss. With the coalescing pipeline enabled
	// failures are asynchronous and surface via AsyncFailures instead.
	return s.node.writeMulti(peers, s.key, buf), nil
}

// ScatterTo sends payload only to the given peers, which must be a subset of
// the dataflow's send list. It gives developers the fine-grained per-call
// dataflow control described in §3.2 of the paper. The membership check runs
// against a cached send-list index (invalidated when recovery rebuilds the
// list), so a per-batch ScatterTo costs no map rebuild on the hot path.
func (s *Segment) ScatterTo(peers []int, payload []byte, iter uint64) (failed []int, err error) {
	s.mu.Lock()
	if s.allowed == nil {
		s.allowed = make(map[int]bool, len(s.send))
		for _, p := range s.send {
			s.allowed[p] = true
		}
	}
	for _, p := range peers {
		if !s.allowed[p] {
			s.mu.Unlock()
			return nil, fmt.Errorf("dstorm: ScatterTo peer %d is not in the dataflow send list", p)
		}
	}
	s.mu.Unlock()
	return s.scatter(peers, payload, iter)
}

// Gather consumes queued updates atomically (seqlock snapshot per slot) and
// returns them ordered by sender rank, then sequence. The Update.Data slices
// alias segment-internal buffers valid until the next gather call.
func (s *Segment) Gather(mode GatherMode) ([]Update, error) {
	return s.gather(mode, true)
}

// GatherWeak consumes queued updates without the version protocol; returned
// updates may have Torn set. It exists to measure what the paper's "torn
// reads" inconsistency costs (and to show Gather prevents it).
func (s *Segment) GatherWeak(mode GatherMode) ([]Update, error) {
	return s.gather(mode, false)
}

func (s *Segment) gather(mode GatherMode, atomic bool) ([]Update, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	senders := s.senderScratch[:0]
	for from, q := range s.queues {
		senders = append(senders, senderQ{from, q})
	}
	s.senderScratch = senders
	s.mu.Unlock()
	// Deterministic order: by sender rank.
	for i := 1; i < len(senders); i++ {
		for j := i; j > 0 && senders[j].from < senders[j-1].from; j-- {
			senders[j], senders[j-1] = senders[j-1], senders[j]
		}
	}

	// Stage 1 of the gather engine: drain every sender's ring. Each queue
	// owns its snapshot buffers and Update scratch, so with a gather pool
	// enabled the per-sender seqlock snapshots proceed concurrently; the
	// rank-order concatenation below restores the deterministic order
	// regardless of completion order.
	if pool := s.node.GatherPool(); pool != nil && len(senders) > 1 {
		g := pool.NewGroup()
		for i := range senders {
			p := senders[i]
			g.Go(func() { s.drainQueue(p.from, p.q, mode, atomic) })
		}
		g.Wait()
	} else {
		for _, p := range senders {
			s.drainQueue(p.from, p.q, mode, atomic)
		}
	}

	updates := s.updOut[:0]
	for _, p := range senders {
		updates = append(updates, p.q.ups...)
	}
	s.updOut = updates
	if len(updates) > 0 {
		s.mu.Lock()
		s.consumedTotal += uint64(len(updates))
		s.mu.Unlock()
	}
	return updates, nil
}

// drainQueue consumes one sender's ring into the queue-owned scratch
// (q.ups), taking atomic or weak snapshots of each slot. Safe to run
// concurrently for different queues; q.consumedMu serializes against
// Stats readers.
func (s *Segment) drainQueue(from int, q *queue, mode GatherMode, atomic bool) {
	q.consumedMu.Lock()
	defer q.consumedMu.Unlock()
	q.ups = q.ups[:0]
	bufIdx := 0
	grab := func() []byte {
		if bufIdx < len(q.bufs) {
			b := q.bufs[bufIdx]
			bufIdx++
			return b
		}
		b := make([]byte, headerSize+s.opts.ObjectSize)
		q.bufs = append(q.bufs, b)
		bufIdx++
		return b
	}
	// Find the freshest sequence present across the ring.
	var newest uint64
	for i := range q.slots {
		if sq, _ := q.slots[i].peek(); sq > newest {
			newest = sq
		}
	}
	if newest <= q.consumed {
		return
	}
	lo := q.consumed + 1
	if mode == GatherLatest {
		q.overwritten += newest - lo // skipped items count as dropped
		lo = newest
	}
	// Items older than newest-qlen+1 have been overwritten in the ring.
	if qlen := uint64(len(q.slots)); newest >= qlen && lo < newest-qlen+1 {
		q.overwritten += (newest - qlen + 1) - lo
		lo = newest - qlen + 1
	}
	for sq := lo; sq <= newest; sq++ {
		sl := &q.slots[sq%uint64(len(q.slots))]
		buf := grab()
		var gotSeq, gotIter uint64
		var n int
		var torn bool
		if atomic {
			gotSeq, gotIter, n = sl.readAtomic(buf)
		} else {
			gotSeq, gotIter, n, torn = sl.readWeak(buf)
		}
		if gotSeq != sq && atomic {
			// The slot was lapped between peek and read; its content is
			// a newer item we will pick up (or already did) at its own
			// sequence position. Skip the overwritten one.
			bufIdx--
			continue
		}
		q.ups = append(q.ups, Update{
			From: from,
			Seq:  gotSeq,
			Iter: gotIter,
			Data: buf[headerSize : headerSize+n],
			Torn: torn,
		})
	}
	q.consumed = newest
}

// PeerIters returns, without consuming anything, the latest iteration count
// observed in each sender's queue (0 if nothing has arrived). Staleness
// policies (SSP) use it to decide whether to stall for stragglers.
func (s *Segment) PeerIters() map[int]uint64 {
	s.mu.Lock()
	queues := make(map[int]*queue, len(s.queues))
	for from, q := range s.queues {
		queues[from] = q
	}
	s.mu.Unlock()
	out := make(map[int]uint64, len(queues))
	for from, q := range queues {
		var best uint64
		for i := range q.slots {
			if _, it := q.slots[i].peek(); it > best {
				best = it
			}
		}
		out[from] = best
	}
	return out
}

// RemovePeer drops a failed rank from the segment's send and receive lists.
// Called by the fault-tolerance layer after the cluster health check agrees
// the rank is dead. Queued updates from the dead rank are discarded.
func (s *Segment) RemovePeer(rank int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.send[:0]
	for _, p := range s.send {
		if p != rank {
			out = append(out, p)
		}
	}
	s.send = out
	s.allowed = nil // invalidate the ScatterTo membership cache
	delete(s.queues, rank)
}

// RestorePeer re-admits a rejoined rank: it returns to the send list (in
// sorted order, at its original dataflow position) and gets a fresh receive
// queue — the old incarnation's queued updates were discarded at RemovePeer
// and must not resurface. Membership follows the original dataflow graph;
// a rank the graph never connected to this one stays absent. Idempotent.
func (s *Segment) RestorePeer(rank int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.graph.SendPeers(s.node.rank) {
		if p != rank {
			continue
		}
		present := false
		for _, q := range s.send {
			if q == rank {
				present = true
				break
			}
		}
		if !present {
			s.send = append(s.send, rank)
			sort.Ints(s.send)
			s.allowed = nil // invalidate the ScatterTo membership cache
		}
	}
	for _, p := range s.graph.RecvPeers(s.node.rank) {
		if p == rank && s.queues[rank] == nil {
			s.queues[rank] = newQueue(s.opts.QueueLen, s.opts.ObjectSize)
		}
	}
}

// Barrier blocks until every live rank in the cluster has reached the
// barrier for this segment. Ranks that die while others wait are skipped,
// per the paper's group-operation recovery. The node's send pipeline is
// drained first, so once the barrier releases every rank's pre-barrier
// scatters have landed — batching cannot weaken BSP.
func (s *Segment) Barrier() error {
	if err := s.node.Drain(); err != nil {
		return err
	}
	return s.node.cluster.barrier("seg/"+s.name, s.node.rank)
}

// Close unregisters the segment from the fabric. Further operations fail
// with ErrClosed.
func (s *Segment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.node.cluster.fab.Unregister(s.node.rank, segKey(s.name))
}
