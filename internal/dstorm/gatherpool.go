package dstorm

import (
	"sync"

	"malt/internal/par"
)

// The receive side of the gather engine: a per-node worker pool that
// Segment.gather fans per-sender ring snapshots across, and that the vector
// library reuses for parallel decode and coordinate-chunked folds. One pool
// per node mirrors the NUMA-ish sharding of a real receive path — every
// rank's receive queues drain on that rank's own workers, never a peer's.

// gatherPoolState is the node's parallel-gather handle; split from Node's
// other mutex domains because gathers are hot and must not contend with
// send-side state.
type gatherPoolState struct {
	mu   sync.Mutex
	pool *par.Pool
}

// EnableParallelGather switches the node's gather path (and the vector
// library's decode+fold stages) to a worker pool of the given size
// (workers <= 0 selects par.DefaultWorkers). Enabling while already enabled
// keeps the first pool, mirroring EnablePipeline. Must be paired with
// DisableParallelGather before the node is discarded.
func (n *Node) EnableParallelGather(workers int) {
	n.gather.mu.Lock()
	defer n.gather.mu.Unlock()
	if n.gather.pool != nil {
		return
	}
	n.gather.pool = par.New(workers, 0)
}

// DisableParallelGather stops the gather pool and returns the node to the
// serial gather path. Callers must not have a gather in flight.
func (n *Node) DisableParallelGather() {
	n.gather.mu.Lock()
	p := n.gather.pool
	n.gather.pool = nil
	n.gather.mu.Unlock()
	if p != nil {
		p.Close()
	}
}

// GatherPool returns the node's parallel-gather pool, or nil when gathers
// run serially.
func (n *Node) GatherPool() *par.Pool {
	n.gather.mu.Lock()
	defer n.gather.mu.Unlock()
	return n.gather.pool
}
