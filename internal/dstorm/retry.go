package dstorm

import (
	"errors"
	"sync/atomic"
	"time"

	"malt/internal/fabric"
)

// RetryPolicy bounds how hard a node tries to land one one-sided write when
// the fabric injects transient faults (fabric.ErrTransient). Permanent
// failures — ErrUnreachable, ErrSenderDead, an unregistered key — are never
// retried: they carry real evidence and must reach the fault monitor
// immediately. The zero value selects the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts per write,
	// including the first. Default 4; 1 disables retrying.
	MaxAttempts int
	// Backoff is the sleep before the first retry. Default 50 µs.
	Backoff time.Duration
	// BackoffMult multiplies the backoff after each retry (exponential
	// backoff). Default 2.
	BackoffMult float64
	// Deadline is the per-write wall-clock budget across all attempts; once
	// exceeded, the write fails even if attempts remain. Default 20 ms.
	Deadline time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Microsecond
	}
	if p.BackoffMult < 1 {
		p.BackoffMult = 2
	}
	if p.Deadline <= 0 {
		p.Deadline = 20 * time.Millisecond
	}
	return p
}

// RetryStats counts a node's transient-fault handling. All fields are
// cumulative since node creation.
type RetryStats struct {
	// Attempts is the number of fabric writes attempted, retries included.
	Attempts uint64
	// Retries is the number of re-attempts after a transient failure.
	Retries uint64
	// Recovered is the number of writes that succeeded after at least one
	// retry — transient faults absorbed without bothering the fault layer.
	Recovered uint64
	// Exhausted is the number of writes that kept failing transiently until
	// attempts or deadline ran out; these surface to the fault monitor.
	Exhausted uint64
}

// retryCounters is the atomic backing store for RetryStats.
type retryCounters struct {
	attempts  atomic.Uint64
	retries   atomic.Uint64
	recovered atomic.Uint64
	exhausted atomic.Uint64
}

func (c *retryCounters) snapshot() RetryStats {
	return RetryStats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Recovered: c.recovered.Load(),
		Exhausted: c.exhausted.Load(),
	}
}

// SetRetryPolicy replaces the node's write-retry policy (normalized with
// defaults). Safe to call while the node is sending.
func (n *Node) SetRetryPolicy(p RetryPolicy) {
	norm := p.withDefaults()
	n.retryMu.Lock()
	n.retry = norm
	n.retryMu.Unlock()
}

// Retry returns the node's current (defaulted) retry policy.
func (n *Node) Retry() RetryPolicy {
	n.retryMu.Lock()
	defer n.retryMu.Unlock()
	return n.retry.withDefaults()
}

// RetryStats returns the node's cumulative transient-fault counters.
func (n *Node) RetryStats() RetryStats { return n.rstats.snapshot() }

// retryLoop runs op under the node's retry policy, absorbing transient
// faults (fabric.ErrTransient) with bounded exponential backoff. It returns
// nil on success, the last transient error when attempts or deadline run
// out, and any permanent error immediately. All sleeps of the delivery path
// live here, in one blessed site.
func (n *Node) retryLoop(op func() error) error {
	p := n.Retry()
	var deadline time.Time
	if p.Deadline > 0 {
		deadline = time.Now().Add(p.Deadline)
	}
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		n.rstats.attempts.Add(1)
		err := op()
		if err == nil {
			if attempt > 1 {
				n.rstats.recovered.Add(1)
			}
			return nil
		}
		if !errors.Is(err, fabric.ErrTransient) {
			return err // permanent: unreachable, dead sender, bad key
		}
		if attempt >= p.MaxAttempts || (!deadline.IsZero() && !time.Now().Before(deadline)) {
			n.rstats.exhausted.Add(1)
			return err
		}
		n.rstats.retries.Add(1)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff = time.Duration(float64(backoff) * p.BackoffMult)
		}
	}
}

// writeWithRetry performs one fabric write under the retry policy.
func (n *Node) writeWithRetry(to int, key string, payload []byte) error {
	return n.retryLoop(func() error {
		return n.cluster.fab.Write(n.rank, to, key, payload)
	})
}

// writeBatchWithRetry posts one merged batch under the retry policy. A
// transient drop loses the whole batch (one chaos draw per attempt), so the
// whole batch is retried — records are idempotent ring deposits keyed by
// sequence number, and a retried batch overwrites its own slots.
func (n *Node) writeBatchWithRetry(to int, key string, records [][]byte) error {
	return n.retryLoop(func() error {
		return n.cluster.fab.WriteBatch(n.rank, to, key, records)
	})
}
