package dstorm

import (
	"sync"
	"sync/atomic"
)

// The async-send queue and the coalescing pipeline both hand the caller's
// encode buffer back immediately and ship a private copy. Those copies
// used to be fresh allocations per update — at scatter rates that is the
// dominant allocation source on the send side. sendBuf makes the copy
// pooled and refcounted: writeMulti takes one copy shared by every
// destination (the fabric only reads it), and the buffer returns to the
// pool when the last destination's delivery retires it.
//
// Recycling after delivery is safe because the stream fabric serializes
// the payload into its own pooled wire buffer before Write/WriteBatch
// returns — the fabric never retains a reference to ours.
type sendBuf struct {
	b    []byte
	refs atomic.Int32
}

var sendBufPool = sync.Pool{New: func() any {
	sendBufMisses.Add(1)
	return new(sendBuf)
}}

// Pool traffic counters, read by TestSendScratchSteadyState: a warmed-up
// steady state must serve copies from the pool (hits grow, misses don't).
var (
	sendBufMisses atomic.Uint64 // fresh sendBuf allocations (pool misses)
	sendBufGets   atomic.Uint64 // total acquisitions
)

// newSendBuf copies payload into a pooled buffer with the given initial
// refcount (one per eventual release call).
func newSendBuf(payload []byte, refs int32) *sendBuf {
	sendBufGets.Add(1)
	s := sendBufPool.Get().(*sendBuf)
	s.b = append(s.b[:0], payload...)
	s.refs.Store(refs)
	return s
}

// release drops one reference; the last one returns the buffer (capacity
// retained) to the pool.
func (s *sendBuf) release() {
	if s.refs.Add(-1) == 0 {
		sendBufPool.Put(s)
	}
}

// releaseN drops n references at once — the undo path when a batch of
// destinations is abandoned before delivery (e.g. the pipeline closed
// between refcounting and enqueue).
func (s *sendBuf) releaseN(n int32) {
	if s.refs.Add(-n) == 0 {
		sendBufPool.Put(s)
	}
}
