package dstorm

import (
	"errors"
	"fmt"
	"sync"

	"malt/internal/fabric"
)

// ErrDead is returned by collective operations invoked from a rank that has
// been marked dead.
var ErrDead = errors.New("dstorm: rank is dead")

// Cluster coordinates collective operations (segment creation, barriers)
// between the dstorm nodes sharing one fabric. It plays the role of the
// synchronous group-operation layer that GASPI provides in the paper's
// implementation.
type Cluster struct {
	fab   fabric.Transport
	coord fabric.Coordinator // non-nil when the transport brings its own barrier

	mu       sync.Mutex
	cond     *sync.Cond
	nodes    []*Node
	barriers map[string]*barrierState
}

type barrierState struct {
	gen     uint64
	arrived map[int]bool
	// pruned records ranks whose pending arrival was removed because they
	// died or left the partition group while the barrier was forming. A
	// pruned rank must not mistake the group's subsequent release for its
	// own: it re-enters the barrier (under its new group) instead.
	pruned map[int]bool
}

// NewCluster creates the coordination layer over a transport and one Node
// per rank. With the default simulated fabric every rank lives in this
// process and barriers are the in-process generation-counted kind; a
// transport that also implements fabric.Coordinator (a multi-process
// backend like fabric/tcpnet) supplies its own cluster-wide barrier and
// dstorm delegates to it.
func NewCluster(f fabric.Transport) *Cluster {
	c := &Cluster{
		fab:      f,
		barriers: make(map[string]*barrierState),
	}
	if co, ok := f.(fabric.Coordinator); ok {
		c.coord = co
	}
	c.cond = sync.NewCond(&c.mu)
	c.nodes = make([]*Node, f.Ranks())
	for i := range c.nodes {
		c.nodes[i] = &Node{cluster: c, rank: i}
	}
	// Liveness changes must wake barrier waiters so they can re-evaluate
	// the set of ranks they are waiting for.
	f.OnLivenessChange(func(rank int, alive bool) {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	return c
}

// Fabric returns the underlying transport.
func (c *Cluster) Fabric() fabric.Transport { return c.fab }

// Node returns the dstorm endpoint for the given rank.
func (c *Cluster) Node(rank int) *Node { return c.nodes[rank] }

// barrier implements a generation-counted barrier over the live ranks
// *reachable from the caller*. Barriers are scoped to the caller's
// partition group: under a network partition each side's barrier releases
// independently (each side believes the other dead, per §3.3), and after a
// heal the groups merge back into one barrier. Ranks that die while the
// barrier is forming are excluded on the fly (the liveness watcher
// broadcasts, and waiters recount).
func (c *Cluster) barrier(name string, rank int) error {
	if c.coord != nil {
		if !c.fab.Alive(rank) {
			return ErrDead
		}
		return c.coord.Barrier(name, rank)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if !c.fab.Alive(rank) {
			return ErrDead
		}
		group := c.fab.GroupOf(rank)
		key := fmt.Sprintf("%s@%d", name, group)
		st := c.barriers[key]
		if st == nil {
			st = &barrierState{arrived: make(map[int]bool), pruned: make(map[int]bool)}
			c.barriers[key] = st
		}
		delete(st.pruned, rank) // re-entering: any stale prune is consumed
		st.arrived[rank] = true
		gen := st.gen
		if c.barrierComplete(st, group) {
			st.gen++
			st.arrived = make(map[int]bool)
			c.cond.Broadcast()
			return nil
		}
		c.cond.Wait()
		if st.pruned[rank] {
			// We were removed from this barrier (death pruning or group
			// change) while waiting; a generation bump here was the OLD
			// group releasing without us. Re-enter under the current
			// topology.
			delete(st.pruned, rank)
			continue
		}
		if st.gen != gen {
			// Our group's barrier released while we waited (our arrival
			// was part of the completed set — otherwise we'd be pruned).
			return nil
		}
		if c.fab.GroupOf(rank) != group {
			// Topology changed under us before anyone pruned: migrate to
			// the new group's barrier on the next loop iteration.
			delete(st.arrived, rank)
			c.cond.Broadcast()
			continue
		}
		if !c.fab.Alive(rank) {
			delete(st.arrived, rank)
			c.cond.Broadcast()
			return ErrDead
		}
	}
}

// barrierComplete reports whether every live rank of the given partition
// group has arrived. Arrivals of ranks that died or left the group are
// pruned — and remembered as pruned, so those ranks re-enter instead of
// mistaking this group's release for their own.
func (c *Cluster) barrierComplete(st *barrierState, group int) bool {
	for r := range st.arrived {
		if !c.fab.Alive(r) || c.fab.GroupOf(r) != group {
			delete(st.arrived, r)
			st.pruned[r] = true
		}
	}
	waiting := 0
	for _, r := range c.fab.AliveRanks() {
		if c.fab.GroupOf(r) != group {
			continue
		}
		waiting++
		if !st.arrived[r] {
			return false
		}
	}
	return waiting > 0
}

// Barrier is a cluster-wide barrier independent of any segment (the paper's
// g.barrier() maps to a segment barrier; this one serves the runtime).
func (c *Cluster) Barrier(rank int) error {
	return c.barrier("cluster", rank)
}

// creationBarrier synchronizes segment creation: all live ranks must create
// the segment before any of them may scatter into it.
func (c *Cluster) creationBarrier(segName string, rank int) error {
	return c.barrier("create/"+segName, rank)
}

// SendMode selects synchronous or queued (asynchronous) scatters.
type SendMode int

const (
	// SendSync performs fabric writes on the caller's goroutine.
	SendSync SendMode = iota
	// SendAsync enqueues writes to a per-node sender queue drained by a
	// dedicated goroutine (the simulated NIC DMA engine). A full queue
	// blocks the caller — the back-pressure behaviour of §3.1.
	SendAsync
)

// Node is one rank's dstorm endpoint.
type Node struct {
	cluster *Cluster
	rank    int

	sendMu   sync.Mutex
	mode     SendMode
	sendq    chan sendReq
	sendDone chan struct{}

	retryMu sync.Mutex
	retry   RetryPolicy // write-retry policy for transient fabric faults
	rstats  retryCounters

	pipeMu sync.Mutex
	pipe   *pipeline // non-nil while the coalescing pipeline is enabled

	gather gatherPoolState // parallel-gather worker pool (see gatherpool.go)

	failMu      sync.Mutex
	asyncFailed map[int]int // peer → count of failed async writes
}

type sendReq struct {
	to  int
	key string
	sb  *sendBuf // pooled payload copy, released after delivery
}

// Rank returns this endpoint's rank.
func (n *Node) Rank() int { return n.rank }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// EnableAsyncSend switches the node to queued sends with the given queue
// depth. The sender-side queue lets training proceed while updates drain,
// and exerts back-pressure when the network falls behind. Must be disabled
// with DisableAsyncSend before the node is discarded.
func (n *Node) EnableAsyncSend(depth int) {
	if depth <= 0 {
		depth = 64
	}
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	if n.mode == SendAsync {
		return
	}
	n.mode = SendAsync
	n.sendq = make(chan sendReq, depth)
	n.sendDone = make(chan struct{})
	go n.drainSends(n.sendq, n.sendDone)
}

// DisableAsyncSend flushes the queue and returns to synchronous sends.
func (n *Node) DisableAsyncSend() {
	n.sendMu.Lock()
	if n.mode != SendAsync {
		n.sendMu.Unlock()
		return
	}
	q, done := n.sendq, n.sendDone
	n.mode = SendSync
	n.sendq = nil
	n.sendDone = nil
	n.sendMu.Unlock()
	close(q)
	<-done
}

func (n *Node) drainSends(q chan sendReq, done chan struct{}) {
	defer close(done)
	for req := range q {
		//maltlint:allow bufretain -- each queued request owns its payload (write copies before enqueueing), so successive iterations post distinct buffers
		if err := n.writeWithRetry(req.to, req.key, req.sb.b); err != nil {
			n.noteAsyncFailure(req.to)
		}
		req.sb.release()
	}
}

// noteAsyncFailure records a failed off-thread write to a peer for the
// fault monitor's next AsyncFailures poll.
func (n *Node) noteAsyncFailure(to int) {
	n.failMu.Lock()
	if n.asyncFailed == nil {
		n.asyncFailed = make(map[int]int)
	}
	n.asyncFailed[to]++
	n.failMu.Unlock()
}

// AsyncFailures returns and clears the peers whose asynchronous writes have
// failed since the last call. The fault monitor polls this — "a fault
// monitor on every node examines the return values of asynchronous writes
// to sender-side queues" (§3.3).
func (n *Node) AsyncFailures() []int {
	n.failMu.Lock()
	defer n.failMu.Unlock()
	if len(n.asyncFailed) == 0 {
		return nil
	}
	out := make([]int, 0, len(n.asyncFailed))
	for p := range n.asyncFailed {
		out = append(out, p)
	}
	n.asyncFailed = nil
	return out
}

// write sends via the current mode, absorbing transient fabric faults with
// the node's retry policy. Async mode copies the payload (the caller reuses
// its encode buffer) and reports failures via AsyncFailures.
func (n *Node) write(to int, key string, payload []byte) error {
	n.sendMu.Lock()
	mode, q := n.mode, n.sendq
	n.sendMu.Unlock()
	if mode == SendSync {
		return n.writeWithRetry(to, key, payload)
	}
	q <- sendReq{to: to, key: key, sb: newSendBuf(payload, 1)}
	return nil
}

// writeMulti delivers one encoded payload to several peers. With the
// coalescing pipeline enabled it copies the payload once, shares the copy
// across all destinations' batches, and returns immediately; delivery
// failures then surface via AsyncFailures. Otherwise it falls back to the
// per-peer write path (sync or async-queue) and returns the peers whose
// writes failed.
func (n *Node) writeMulti(peers []int, key string, payload []byte) (failed []int) {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipeMu.Unlock()
	if p != nil {
		sb := newSendBuf(payload, int32(len(peers)))
		if p.enqueue(peers, key, sb) {
			return nil
		}
		// Pipeline raced with DisablePipeline; fall through to direct sends.
		sb.releaseN(int32(len(peers)))
	}
	for _, to := range peers {
		//maltlint:allow bufretain -- fan-out re-posts the same read-only payload; write copies it in async mode and completes before returning in sync mode
		if err := n.write(to, key, payload); err != nil {
			failed = append(failed, to)
		}
	}
	return failed
}

// Ping probes a peer through the fabric.
func (n *Node) Ping(to int) error { return n.cluster.fab.Ping(n.rank, to) }

// Alive reports whether this node's rank is alive on the fabric.
func (n *Node) Alive() bool { return n.cluster.fab.Alive(n.rank) }

// String implements fmt.Stringer for debugging.
func (n *Node) String() string { return fmt.Sprintf("dstorm.Node(rank=%d)", n.rank) }
