package dstorm

import (
	"math"
	"sync"
	"testing"

	"malt/internal/dataflow"
	"malt/internal/fabric"
)

func newAddSegments(t *testing.T, ranks, dim int) (*Cluster, []*AddSegment) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(f)
	g, err := dataflow.New(dataflow.All, ranks)
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*AddSegment, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			segs[r], errs[r] = c.Node(r).CreateAddSegment("g", dim, g)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return c, segs
}

func TestAddSegmentAveragesInHardware(t *testing.T) {
	_, segs := newAddSegments(t, 3, 2)
	// Each rank contributes [rank+1, 10*(rank+1)] to every peer and itself.
	for r, s := range segs {
		vals := []float64{float64(r + 1), 10 * float64(r+1)}
		if err := s.AddLocal(vals); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Scatter(vals, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Every rank drains the average of all three contributions: mean(1,2,3)=2.
	for r, s := range segs {
		avg := make([]float64, 2)
		n, err := s.Drain(avg)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("rank %d merged %d contributions, want 3", r, n)
		}
		if math.Abs(avg[0]-2) > 1e-12 || math.Abs(avg[1]-20) > 1e-12 {
			t.Fatalf("rank %d avg = %v", r, avg)
		}
	}
}

func TestAddSegmentDrainResets(t *testing.T) {
	_, segs := newAddSegments(t, 2, 1)
	if err := segs[0].AddLocal([]float64{4}); err != nil {
		t.Fatal(err)
	}
	avg := []float64{0}
	if n, _ := segs[0].Drain(avg); n != 1 || avg[0] != 4 {
		t.Fatalf("drain = %d, %v", n, avg)
	}
	avg[0] = 99
	if n, _ := segs[0].Drain(avg); n != 0 || avg[0] != 99 {
		t.Fatalf("empty drain should leave avg untouched: %d, %v", n, avg)
	}
	if segs[0].Pending() != 0 {
		t.Fatal("pending should be 0 after drain")
	}
}

func TestAddSegmentUpdatesMergeNotOverwrite(t *testing.T) {
	// Unlike ring queues, many scatters before a drain all merge.
	_, segs := newAddSegments(t, 2, 1)
	for i := 0; i < 10; i++ {
		if _, err := segs[0].Scatter([]float64{1}, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := segs[1].Pending(); got != 10 {
		t.Fatalf("pending = %d, want 10 (no overwrites)", got)
	}
	avg := []float64{0}
	if n, _ := segs[1].Drain(avg); n != 10 || avg[0] != 1 {
		t.Fatalf("drain = %d, %v", n, avg)
	}
}

func TestAddSegmentValidation(t *testing.T) {
	f, _ := fabric.New(fabric.Config{Ranks: 1})
	c := NewCluster(f)
	g1, _ := dataflow.New(dataflow.All, 1)
	if _, err := c.Node(0).CreateAddSegment("g", 0, g1); err == nil {
		t.Fatal("dim=0 should fail")
	}
	if _, err := c.Node(0).CreateAddSegment("g", 4, nil); err == nil {
		t.Fatal("nil graph should fail")
	}
	s, err := c.Node(0).CreateAddSegment("g", 4, g1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scatter(make([]float64, 3), 1); err == nil {
		t.Fatal("wrong scatter length should fail")
	}
	if err := s.AddLocal(make([]float64, 3)); err == nil {
		t.Fatal("wrong AddLocal length should fail")
	}
	if _, err := s.Drain(make([]float64, 3)); err == nil {
		t.Fatal("wrong drain length should fail")
	}
}

func TestAddSegmentFailedPeerReported(t *testing.T) {
	c, segs := newAddSegments(t, 3, 1)
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	failed, err := segs[0].Scatter([]float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed = %v", failed)
	}
	segs[0].RemovePeer(2)
	failed, err = segs[0].Scatter([]float64{1}, 2)
	if err != nil || failed != nil {
		t.Fatalf("after removal: failed=%v err=%v", failed, err)
	}
}

func TestAddSegmentConcurrentDeposits(t *testing.T) {
	_, segs := newAddSegments(t, 4, 8)
	var wg sync.WaitGroup
	const rounds = 25
	for r := 1; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vals := make([]float64, 8)
			for i := range vals {
				vals[i] = float64(r)
			}
			for i := 0; i < rounds; i++ {
				//maltlint:allow bufretain -- each rank re-posts one read-only buffer; Scatter encodes it synchronously
				if _, err := segs[r].Scatter(vals, uint64(i+1)); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	// Rank 0 received rounds deposits from each of 3 peers: sum = rounds*(1+2+3).
	avg := make([]float64, 8)
	n, err := segs[0].Drain(avg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3*rounds {
		t.Fatalf("merged %d, want %d", n, 3*rounds)
	}
	want := float64(rounds*(1+2+3)) / float64(3*rounds)
	if math.Abs(avg[0]-want) > 1e-12 {
		t.Fatalf("avg = %v, want %v", avg[0], want)
	}
}

func TestAddSegmentDistributedSGDConverges(t *testing.T) {
	// Gradient averaging through fetch-and-add: minimize ‖w − target‖² on
	// 3 ranks; all replicas must converge to the target.
	const dim = 4
	target := []float64{1, -2, 0.5, 3}
	_, segs := newAddSegments(t, 3, dim)
	var wg sync.WaitGroup
	finals := make([][]float64, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := segs[r]
			w := make([]float64, dim)
			grad := make([]float64, dim)
			avg := make([]float64, dim)
			for it := 0; it < 60; it++ {
				for i := range grad {
					grad[i] = 2 * (w[i] - target[i])
				}
				if err := s.AddLocal(grad); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scatter(grad, uint64(it+1)); err != nil {
					t.Error(err)
					return
				}
				if err := s.Barrier(); err != nil {
					t.Error(err)
					return
				}
				copy(avg, grad)
				if _, err := s.Drain(avg); err != nil {
					t.Error(err)
					return
				}
				for i := range w {
					w[i] -= 0.2 * avg[i]
				}
				if err := s.Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
			finals[r] = w
		}(r)
	}
	wg.Wait()
	for r, w := range finals {
		if w == nil {
			t.Fatal("missing result")
		}
		for i := range target {
			if math.Abs(w[i]-target[i]) > 0.01 {
				t.Fatalf("rank %d w[%d] = %v, want %v", r, i, w[i], target[i])
			}
		}
	}
}
