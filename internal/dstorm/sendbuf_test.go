package dstorm

import (
	"testing"
	"time"

	"malt/internal/fabric"
)

// TestSendScratchSteadyState locks in the send-side buffer pooling: after
// a warm-up phase, both the coalescing pipeline and the async-send queue
// must serve their payload copies from the pool. A regression (a code path
// allocating fresh copies again) shows up as pool misses growing with the
// workload instead of staying flat.
func TestSendScratchSteadyState(t *testing.T) {
	pcfg := slowFlush()
	pcfg.MaxBatchCount = 8
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 3},
		SegmentOptions{ObjectSize: 64, QueueLen: 4096}, pcfg)

	const warm, measured = 256, 512
	payload := make([]byte, 64)
	for i := 0; i < warm; i++ {
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}

	missesBefore, getsBefore := sendBufMisses.Load(), sendBufGets.Load()
	// Drain periodically: a paced producer (a training loop alternating
	// compute and scatter) runs against a recycled working set; an
	// unpaced burst legitimately grows it.
	for i := 0; i < measured; i++ {
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[0].Scatter(payload, uint64(warm+i+1)); err != nil {
			t.Fatal(err)
		}
		if i%64 == 63 {
			if err := c.Node(0).Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Node(0).Drain(); err != nil {
		t.Fatal(err)
	}
	gets := sendBufGets.Load() - getsBefore
	misses := sendBufMisses.Load() - missesBefore
	if gets < measured {
		t.Fatalf("pipeline send path acquired %d buffers for %d scatters", gets, measured)
	}
	// A GC between runs may evict pooled buffers; allow a small residue but
	// fail if copies are being allocated per operation again.
	if misses > gets/10 {
		t.Fatalf("steady-state pool misses = %d of %d gets; send copies are not being recycled", misses, gets)
	}

	// The async-send queue shares the pool.
	n := c.Node(1)
	n.EnableAsyncSend(1024)
	defer n.DisableAsyncSend()
	for i := 0; i < warm; i++ {
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[1].Scatter(payload, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(); err != nil {
		t.Fatal(err)
	}
	missesBefore = sendBufMisses.Load()
	for i := 0; i < measured; i++ {
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[1].Scatter(payload, uint64(warm+i+1)); err != nil {
			t.Fatal(err)
		}
		if i%64 == 63 {
			if err := n.Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.Drain(); err != nil {
		t.Fatal(err)
	}
	if misses := sendBufMisses.Load() - missesBefore; misses > measured/10 {
		t.Fatalf("async-send steady state allocated %d fresh copies for %d scatters", misses, measured)
	}
}

// TestPipelineTimerReuse pins the deadline-timer free list: buckets created
// after a deadline flush re-arm the expired timer instead of allocating a
// new one.
func TestPipelineTimerReuse(t *testing.T) {
	pcfg := slowFlush()
	pcfg.MaxDelay = 5 * time.Millisecond
	c, segs := newPipelineCluster(t, fabric.Config{Ranks: 2},
		SegmentOptions{ObjectSize: 64, QueueLen: 1024}, pcfg)
	for round := 0; round < 5; round++ {
		if _, err := segs[0].Scatter([]byte("tick"), uint64(round+1)); err != nil {
			t.Fatal(err)
		}
		waitForCond(t, "deadline flush", func() bool {
			return c.Node(0).PipelineStats().FlushDeadline == uint64(round+1)
		})
	}
	p := c.Node(0).pipe
	p.mu.Lock()
	free := len(p.timers)
	p.mu.Unlock()
	if free != 1 {
		t.Fatalf("timer free list holds %d timers after 5 sequential deadline rounds, want 1 (reuse)", free)
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		//maltlint:allow rawsleep -- bounded poll helper in tests; no fabric retry involved
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkScatterSend measures the pipelined scatter enqueue cost with
// allocation reporting — the dstorm face of the zero-alloc send path.
func BenchmarkScatterSend(b *testing.B) {
	pcfg := PipelineConfig{Workers: 2, MaxBatchBytes: 1 << 20, MaxBatchCount: 16, MaxDelay: time.Millisecond}
	segs := benchCluster(b, 2, SegmentOptions{ObjectSize: 1 << 10, QueueLen: 4096})
	node := segs[0].node
	node.EnablePipeline(pcfg)
	defer node.DisablePipeline()
	payload := make([]byte, 1<<10)
	for i := 0; i < 256; i++ { // warm the pools
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := node.Drain(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//maltlint:allow bufretain -- Scatter copies the payload into a pooled sendBuf before enqueueing (the property this test pins)
		if _, err := segs[0].Scatter(payload, uint64(256+i+1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := node.Drain(); err != nil {
		b.Fatal(err)
	}
}
