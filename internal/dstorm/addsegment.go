package dstorm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"malt/internal/dataflow"
)

// AddSegment implements the extension sketched in the paper's conclusion:
// "primitives such as fetch_and_add can be used to perform gradient
// averaging in hardware". Instead of per-sender receive queues that the
// host averages after the fact, an AddSegment keeps a single accumulator
// per rank; a one-sided scatter *adds* the update into every receiver's
// accumulator at deposit time (what an RDMA fetch-and-add NIC would do),
// and the local Drain fetches the running (sum, count) and resets it.
//
// Compared to queue-based averaging this removes the gather-side decode
// and fold entirely and never overwrites updates (they merge instead), at
// the cost of losing per-sender provenance: no staleness filtering, no
// replace-style UDFs — averaging only. The ablation benchmarks quantify
// the trade.
type AddSegment struct {
	node  *Node
	name  string
	dim   int
	graph *dataflow.Graph

	sendMu sync.Mutex
	send   []int
	iter   uint64

	mu    sync.Mutex // the "NIC" lock guarding the accumulator
	acc   []float64
	count int

	encBuf []byte
}

// addKey names the fabric registration of an AddSegment.
func addKey(name string) string { return "dstorm-add/" + name }

// CreateAddSegment collectively creates a fetch-and-add segment holding a
// dim-length accumulator on every rank. Like CreateSegment it blocks until
// all live ranks have created it.
func (n *Node) CreateAddSegment(name string, dim int, graph *dataflow.Graph) (*AddSegment, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("dstorm: AddSegment dim must be positive, got %d", dim)
	}
	if graph == nil {
		return nil, fmt.Errorf("dstorm: AddSegment requires a dataflow graph")
	}
	if graph.N() != n.cluster.fab.Ranks() {
		return nil, fmt.Errorf("dstorm: graph covers %d ranks but fabric has %d", graph.N(), n.cluster.fab.Ranks())
	}
	s := &AddSegment{
		node:   n,
		name:   name,
		dim:    dim,
		graph:  graph,
		send:   append([]int(nil), graph.SendPeers(n.rank)...),
		acc:    make([]float64, dim),
		encBuf: make([]byte, 8*dim),
	}
	if err := n.cluster.fab.Register(n.rank, addKey(name), s.handleAdd); err != nil {
		return nil, err
	}
	if err := n.cluster.creationBarrier("add/"+name, n.rank); err != nil {
		return nil, err
	}
	return s, nil
}

// handleAdd is the one-sided deposit: it runs on the sender's goroutine
// (or the TCP receive goroutine) and merges the update into the
// accumulator — the simulated fetch-and-add.
func (s *AddSegment) handleAdd(from int, payload []byte) error {
	if len(payload) != 8*s.dim {
		return fmt.Errorf("dstorm: AddSegment %q: payload %d bytes, want %d", s.name, len(payload), 8*s.dim)
	}
	s.mu.Lock()
	for i := 0; i < s.dim; i++ {
		s.acc[i] += math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	s.count++
	s.mu.Unlock()
	return nil
}

// Scatter adds vals into every dataflow peer's accumulator, returning the
// peers whose writes failed.
func (s *AddSegment) Scatter(vals []float64, iter uint64) (failed []int, err error) {
	if len(vals) != s.dim {
		return nil, fmt.Errorf("dstorm: AddSegment scatter of %d values, want %d", len(vals), s.dim)
	}
	s.sendMu.Lock()
	peers := append([]int(nil), s.send...)
	s.iter = iter
	buf := s.encBuf
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	s.sendMu.Unlock()

	return s.node.writeMulti(peers, addKey(s.name), buf), nil
}

// AddLocal merges this rank's own contribution into its accumulator, so a
// subsequent Drain averages self together with the peers (the fold
// Average performs for queue segments).
func (s *AddSegment) AddLocal(vals []float64) error {
	if len(vals) != s.dim {
		return fmt.Errorf("dstorm: AddLocal of %d values, want %d", len(vals), s.dim)
	}
	s.mu.Lock()
	for i, v := range vals {
		s.acc[i] += v
	}
	s.count++
	s.mu.Unlock()
	return nil
}

// Drain writes the average of everything accumulated since the last drain
// into avg and resets the accumulator, returning how many contributions
// were merged. With zero contributions avg is left untouched.
func (s *AddSegment) Drain(avg []float64) (int, error) {
	if len(avg) != s.dim {
		return 0, fmt.Errorf("dstorm: Drain into %d values, want %d", len(avg), s.dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, nil
	}
	inv := 1 / float64(s.count)
	for i := range avg {
		avg[i] = s.acc[i] * inv
		s.acc[i] = 0
	}
	n := s.count
	s.count = 0
	return n, nil
}

// Pending returns the number of undrained contributions.
func (s *AddSegment) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// RemovePeer drops a failed rank from the send list.
func (s *AddSegment) RemovePeer(rank int) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	out := s.send[:0]
	for _, p := range s.send {
		if p != rank {
			out = append(out, p)
		}
	}
	s.send = out
}

// RestorePeer re-admits a rejoined rank to the send list at its original
// dataflow position. The inverse of RemovePeer; idempotent.
func (s *AddSegment) RestorePeer(rank int) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	for _, p := range s.graph.SendPeers(s.node.rank) {
		if p != rank {
			continue
		}
		for _, q := range s.send {
			if q == rank {
				return
			}
		}
		s.send = append(s.send, rank)
		sort.Ints(s.send)
	}
}

// Barrier blocks until every live rank reaches it, draining this node's
// send pipeline first so pre-barrier scatters are merged before release.
func (s *AddSegment) Barrier() error {
	if err := s.node.Drain(); err != nil {
		return err
	}
	return s.node.cluster.barrier("add/"+s.name, s.node.rank)
}

// Close unregisters the segment.
func (s *AddSegment) Close() error {
	return s.node.cluster.fab.Unregister(s.node.rank, addKey(s.name))
}
