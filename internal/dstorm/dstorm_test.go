package dstorm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/fabric"
)

// simFab unwraps the simulated fabric behind a test cluster for the
// sim-only controls (partitions, blackouts) the Transport interface does
// not carry.
func simFab(c *Cluster) *fabric.Fabric { return c.Fabric().(*fabric.Fabric) }

// newTestCluster creates a fabric+cluster and opens the named segment on
// every rank concurrently (creation is a collective operation).
func newTestCluster(t *testing.T, ranks int, opts SegmentOptions) (*Cluster, []*Segment) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(f)
	if opts.Graph == nil {
		g, err := dataflow.New(dataflow.All, ranks)
		if err != nil {
			t.Fatal(err)
		}
		opts.Graph = g
	}
	segs := make([]*Segment, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			segs[r], errs[r] = c.Node(r).CreateSegment("grad", opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d CreateSegment: %v", r, err)
		}
	}
	return c, segs
}

func TestScatterGatherAllToAll(t *testing.T) {
	_, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 16})
	for r, s := range segs {
		if _, err := s.Scatter([]byte(fmt.Sprintf("update-%d", r)), 1); err != nil {
			t.Fatal(err)
		}
	}
	for r, s := range segs {
		ups, err := s.Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		if len(ups) != 2 {
			t.Fatalf("rank %d gathered %d updates, want 2", r, len(ups))
		}
		for _, u := range ups {
			want := fmt.Sprintf("update-%d", u.From)
			if string(u.Data) != want {
				t.Fatalf("rank %d got %q from %d, want %q", r, u.Data, u.From, want)
			}
			if u.Iter != 1 {
				t.Fatalf("iter = %d, want 1", u.Iter)
			}
			if u.Torn {
				t.Fatal("atomic gather returned a torn update")
			}
		}
	}
	// Second gather with nothing new returns empty.
	ups, err := segs[0].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatalf("second gather returned %d updates", len(ups))
	}
}

func TestScatterRespectsDataflow(t *testing.T) {
	g, err := dataflow.FromAdjacency([][]int{{1}, {2}, {0}}) // 3-cycle
	if err != nil {
		t.Fatal(err)
	}
	_, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8, Graph: g})
	if _, err := segs[0].Scatter([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].From != 0 {
		t.Fatalf("rank 1 updates = %+v", ups)
	}
	ups, err = segs[2].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatalf("rank 2 should receive nothing from rank 0, got %+v", ups)
	}
}

func TestScatterToSubset(t *testing.T) {
	_, segs := newTestCluster(t, 4, SegmentOptions{ObjectSize: 8})
	if _, err := segs[0].ScatterTo([]int{2}, []byte("only2"), 1); err != nil {
		t.Fatal(err)
	}
	ups, err := segs[2].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || string(ups[0].Data) != "only2" {
		t.Fatalf("rank 2 updates = %+v", ups)
	}
	ups, err = segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatalf("rank 1 should have nothing, got %+v", ups)
	}
	// Send list must be restored afterwards.
	if _, err := segs[0].Scatter([]byte("all"), 2); err != nil {
		t.Fatal(err)
	}
	ups, err = segs[3].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("send list not restored: rank 3 got %+v", ups)
	}
	// Peers outside the dataflow are rejected.
	if _, err := segs[0].ScatterTo([]int{0}, []byte("self"), 1); err == nil {
		t.Fatal("ScatterTo(self) should fail")
	}
}

func TestQueueOverwriteOnFull(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8, QueueLen: 2})
	// Send 5 updates without any gather: ring of 2 keeps only the last 2.
	for i := 1; i <= 5; i++ {
		if _, err := segs[0].Scatter([]byte(fmt.Sprintf("u%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("gathered %d, want 2 (older updates overwritten)", len(ups))
	}
	if string(ups[0].Data) != "u4" || string(ups[1].Data) != "u5" {
		t.Fatalf("got %q, %q; want u4, u5", ups[0].Data, ups[1].Data)
	}
}

func TestGatherLatestSkipsOld(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8, QueueLen: 4})
	for i := 1; i <= 3; i++ {
		if _, err := segs[0].Scatter([]byte(fmt.Sprintf("u%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ups, err := segs[1].Gather(GatherLatest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || string(ups[0].Data) != "u3" {
		t.Fatalf("GatherLatest = %+v", ups)
	}
	// The older items are considered consumed.
	ups, err = segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatalf("items resurfaced after GatherLatest: %+v", ups)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 4})
	if _, err := segs[0].Scatter(make([]byte, 5), 1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPeerIters(t *testing.T) {
	_, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8})
	if _, err := segs[1].Scatter([]byte("a"), 7); err != nil {
		t.Fatal(err)
	}
	iters := segs[0].PeerIters()
	if iters[1] != 7 {
		t.Fatalf("PeerIters[1] = %d, want 7", iters[1])
	}
	if iters[2] != 0 {
		t.Fatalf("PeerIters[2] = %d, want 0 (nothing arrived)", iters[2])
	}
	// Peeking does not consume.
	ups, err := segs[0].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("gather after peek = %+v", ups)
	}
}

func TestScatterReportsFailedPeers(t *testing.T) {
	c, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8})
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	failed, err := segs[0].Scatter([]byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", failed)
	}
	// Rank 1 still received the update.
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("live peer missed the update: %+v", ups)
	}
}

func TestRemovePeer(t *testing.T) {
	_, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8})
	segs[0].RemovePeer(2)
	if _, err := segs[0].Scatter([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	peers := segs[0].SendPeers()
	if len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("SendPeers after removal = %v", peers)
	}
	// Receive side: drop rank 2's queue on rank 0; a zombie write bounces.
	if _, err := segs[2].Scatter([]byte("zombie"), 1); err != nil {
		t.Fatal(err)
	}
	ups, err := segs[0].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if u.From == 2 {
			t.Fatal("gathered update from removed peer")
		}
	}
}

func TestSegmentBarrierReleasesAllRanks(t *testing.T) {
	_, segs := newTestCluster(t, 4, SegmentOptions{ObjectSize: 8})
	var wg sync.WaitGroup
	reached := make(chan int, 4)
	for r, s := range segs {
		wg.Add(1)
		go func(r int, s *Segment) {
			defer wg.Done()
			if err := s.Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
				return
			}
			reached <- r
		}(r, s)
	}
	wg.Wait()
	close(reached)
	count := 0
	for range reached {
		count++
	}
	if count != 4 {
		t.Fatalf("%d ranks passed the barrier, want 4", count)
	}
}

func TestBarrierSkipsDeadRank(t *testing.T) {
	c, segs := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8})
	done := make(chan error, 2)
	go func() { done <- segs[0].Barrier() }()
	go func() { done <- segs[1].Barrier() }()
	// Give the two live ranks a moment to block, then kill rank 2, which
	// never arrives. The barrier must release the survivors.
	time.Sleep(20 * time.Millisecond)
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("barrier: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("barrier did not release after straggler death")
		}
	}
}

func TestBarrierFromDeadRankFails(t *testing.T) {
	c, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	if err := c.Fabric().Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := segs[0].Barrier(); !errors.Is(err, ErrDead) {
		t.Fatalf("err = %v, want ErrDead", err)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	c, _ := newTestCluster(t, 3, SegmentOptions{ObjectSize: 8})
	const rounds = 50
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := c.Barrier(r); err != nil {
					t.Errorf("rank %d round %d: %v", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestTornReadsObservableWithWeakGather(t *testing.T) {
	// Large object + tiny chunks maximize the window; a spinning weak
	// reader should observe at least one torn snapshot while atomic
	// gathers never do.
	const objSize = 1 << 16
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: objSize, QueueLen: 1, ChunkSize: 512})

	payloadA := bytes.Repeat([]byte{0xAA}, objSize)
	payloadB := bytes.Repeat([]byte{0xBB}, objSize)

	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := payloadA
			if i%2 == 1 {
				p = payloadB
			}
			if _, err := segs[0].Scatter(p, uint64(i+1)); err != nil {
				t.Errorf("scatter: %v", err)
				return
			}
		}
	}()

	sawTorn := false
	sawMixed := false
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !(sawTorn && sawMixed) {
		ups, err := segs[1].GatherWeak(GatherLatest)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			if u.Torn {
				sawTorn = true
			}
			if len(u.Data) > 0 {
				first := u.Data[0]
				for _, b := range u.Data {
					if b != first {
						sawMixed = true
						break
					}
				}
			}
		}
	}
	close(stop)
	writerWg.Wait()
	if !sawTorn {
		t.Fatal("weak gather never observed a torn (mid-write) update")
	}
	if !sawMixed {
		t.Fatal("weak gather never observed mixed old/new bytes")
	}
}

func TestAtomicGatherNeverTorn(t *testing.T) {
	const objSize = 1 << 14
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: objSize, QueueLen: 2, ChunkSize: 256})

	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := bytes.Repeat([]byte{byte(i)}, objSize)
			if _, err := segs[0].Scatter(payload, uint64(i+1)); err != nil {
				t.Errorf("scatter: %v", err)
				return
			}
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	checked := 0
	for time.Now().Before(deadline) {
		ups, err := segs[1].Gather(GatherAllNew)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			if u.Torn {
				t.Fatal("atomic gather returned Torn=true")
			}
			if len(u.Data) == 0 {
				continue
			}
			first := u.Data[0]
			for _, b := range u.Data {
				if b != first {
					t.Fatalf("atomic gather returned mixed payload (seq %d)", u.Seq)
				}
			}
			checked++
		}
	}
	close(stop)
	writerWg.Wait()
	if checked == 0 {
		t.Fatal("no updates observed")
	}
}

func TestAsyncSendDeliversAndFlushes(t *testing.T) {
	c, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	n := c.Node(0)
	n.EnableAsyncSend(16)
	for i := 1; i <= 10; i++ {
		if _, err := segs[0].Scatter([]byte(fmt.Sprintf("a%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n.DisableAsyncSend() // flushes the queue
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 4 { // default queue len 4; 10 sends overwrite down to 4
		t.Fatalf("gathered %d updates, want 4", len(ups))
	}
	if string(ups[len(ups)-1].Data) != "a10" {
		t.Fatalf("last update = %q", ups[len(ups)-1].Data)
	}
}

func TestAsyncSendFailuresReported(t *testing.T) {
	c, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	if err := c.Fabric().Kill(1); err != nil {
		t.Fatal(err)
	}
	n := c.Node(0)
	n.EnableAsyncSend(4)
	if _, err := segs[0].Scatter([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	n.DisableAsyncSend()
	failed := n.AsyncFailures()
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("AsyncFailures = %v, want [1]", failed)
	}
	if again := n.AsyncFailures(); again != nil {
		t.Fatalf("AsyncFailures should clear, got %v", again)
	}
}

func TestCreateSegmentValidation(t *testing.T) {
	f, err := fabric.New(fabric.Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(f)
	g2, _ := dataflow.New(dataflow.All, 2)
	if _, err := c.Node(0).CreateSegment("s", SegmentOptions{ObjectSize: 0, Graph: g2}); err == nil {
		t.Fatal("ObjectSize=0 should fail")
	}
	if _, err := c.Node(0).CreateSegment("s", SegmentOptions{ObjectSize: 8}); err == nil {
		t.Fatal("missing graph should fail")
	}
	g3, _ := dataflow.New(dataflow.All, 3)
	if _, err := c.Node(0).CreateSegment("s", SegmentOptions{ObjectSize: 8, Graph: g3}); err == nil {
		t.Fatal("graph/fabric rank mismatch should fail")
	}
	bad, _ := dataflow.FromAdjacency([][]int{{1}, {0}, {3}, {2}})
	f4, _ := fabric.New(fabric.Config{Ranks: 4})
	c4 := NewCluster(f4)
	if _, err := c4.Node(0).CreateSegment("s", SegmentOptions{ObjectSize: 8, Graph: bad}); err == nil {
		t.Fatal("disconnected graph should fail")
	}
}

func TestClosedSegment(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	if err := segs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := segs[0].Scatter([]byte("x"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("scatter on closed: %v", err)
	}
	if _, err := segs[0].Gather(GatherAllNew); !errors.Is(err, ErrClosed) {
		t.Fatalf("gather on closed: %v", err)
	}
	if err := segs[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// Writing into a closed segment's registration fails at the fabric.
	if _, err := segs[1].Scatter([]byte("y"), 1); err != nil {
		t.Fatalf("scatter from live rank: %v", err)
	}
}

func TestIterationStamping(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8})
	//maltlint:allow iterskew -- single-round test pins one distinctive stamp to assert it rides the wire
	segs[0].SetIteration(42)
	if _, err := segs[0].Scatter([]byte("x"), 0); err != nil { // 0 = use stored iter
		t.Fatal(err)
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].Iter != 42 {
		t.Fatalf("ups = %+v, want iter 42", ups)
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8, QueueLen: 16})
	for i := 0; i < 10; i++ {
		if _, err := segs[0].Scatter([]byte("x"), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ups, err := segs[1].Gather(GatherAllNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 10 {
		t.Fatalf("gathered %d", len(ups))
	}
	for i, u := range ups {
		if u.Seq != uint64(i+1) {
			t.Fatalf("ups[%d].Seq = %d, want %d", i, u.Seq, i+1)
		}
	}
}

func TestSegmentStatsCountConsumedAndOverwritten(t *testing.T) {
	_, segs := newTestCluster(t, 2, SegmentOptions{ObjectSize: 8, QueueLen: 2})
	// 5 scatters into a depth-2 ring with no consumption: 3 overwritten.
	for i := 1; i <= 5; i++ {
		if _, err := segs[0].Scatter([]byte("x"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := segs[1].Gather(GatherAllNew); err != nil {
		t.Fatal(err)
	}
	st := segs[1].Stats()
	if st.Consumed != 2 {
		t.Fatalf("Consumed = %d, want 2", st.Consumed)
	}
	if st.Overwritten != 3 {
		t.Fatalf("Overwritten = %d, want 3", st.Overwritten)
	}
	// GatherLatest drops queued-but-older items: they count as overwritten.
	for i := 6; i <= 7; i++ {
		if _, err := segs[0].Scatter([]byte("x"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := segs[1].Gather(GatherLatest); err != nil {
		t.Fatal(err)
	}
	st = segs[1].Stats()
	if st.Consumed != 3 {
		t.Fatalf("Consumed = %d, want 3", st.Consumed)
	}
	if st.Overwritten != 4 {
		t.Fatalf("Overwritten = %d, want 4", st.Overwritten)
	}
	// Sender side saw no loss at all.
	if s := segs[0].Stats(); s.Consumed != 0 || s.Overwritten != 0 {
		t.Fatalf("sender stats = %+v", s)
	}
}

func TestBarrierScopedToPartition(t *testing.T) {
	// Four ranks block at a barrier; a partition splits them 2+2 mid-wait.
	// Each side's barrier must release independently — the paper's
	// "training resumes on both clusters" semantics — instead of
	// deadlocking on unreachable peers.
	c, segs := newTestCluster(t, 4, SegmentOptions{ObjectSize: 8})
	done := make(chan int, 4)
	for r := 0; r < 4; r++ {
		go func(r int) {
			if err := segs[r].Barrier(); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			done <- r
		}(r)
	}
	// Let all four block (none can complete: they need each other), then
	// cut the network into {0,1} and {2,3}.
	time.Sleep(20 * time.Millisecond)
	if err := simFab(c).Partition([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	released := map[int]bool{}
	for i := 0; i < 4; i++ {
		select {
		case r := <-done:
			released[r] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("barrier deadlocked across the partition; released: %v", released)
		}
	}
	// After healing, a cluster-wide barrier must span all ranks again.
	simFab(c).Heal()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := segs[r].Barrier(); err != nil {
				t.Errorf("post-heal rank %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
}

func TestBarrierWithinPartitionGroups(t *testing.T) {
	// With a partition already in place, each group barriers among itself.
	c, segs := newTestCluster(t, 4, SegmentOptions{ObjectSize: 8})
	if err := simFab(c).Partition([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	// Only group 0 barriers: must complete without group 1 participating.
	done := make(chan error, 2)
	go func() { done <- segs[0].Barrier() }()
	go func() { done <- segs[1].Barrier() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("group-0 barrier waited on the unreachable group")
		}
	}
}
