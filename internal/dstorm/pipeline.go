package dstorm

import (
	"sync"
	"sync/atomic"
	"time"

	"malt/internal/par"
)

// PipelineConfig tunes the per-destination send coalescer. The coalescer
// merges small Scatter payloads bound for the same peer into one fabric
// WriteBatch — the doorbell batching a real RDMA NIC offers — so the base
// write latency is paid once per batch instead of once per update. Batches
// are flushed by whichever bound trips first: byte budget, record count, or
// deadline. The zero value selects the defaults below.
type PipelineConfig struct {
	// Workers is the number of background deposit workers. Destinations map
	// to workers stickily (to % Workers), preserving per-destination FIFO
	// order. Default min(GOMAXPROCS, 8).
	Workers int
	// MaxBatchBytes flushes a destination's batch when its pending payload
	// reaches this many bytes. Default 256 KiB.
	MaxBatchBytes int
	// MaxBatchCount flushes a destination's batch at this many records.
	// Default 32.
	MaxBatchCount int
	// MaxDelay bounds how long a record may sit in a partial batch before a
	// deadline flush posts it anyway. Default 200 µs.
	MaxDelay time.Duration
	// QueueDepth is each worker's channel capacity in batches. A full
	// worker queue blocks the flusher — the sender-side back-pressure of
	// §3.1. Default 128.
	QueueDepth int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Workers <= 0 {
		c.Workers = par.DefaultWorkers()
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
	if c.MaxBatchCount <= 0 {
		c.MaxBatchCount = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	return c
}

// PipelineStats is a snapshot of the coalescer's counters since
// EnablePipeline.
type PipelineStats struct {
	// Enqueued is the number of records accepted into the coalescer (one
	// per destination per Scatter).
	Enqueued uint64
	// Batches is the number of merged writes handed to deposit workers.
	Batches uint64
	// WritesSaved is Enqueued − Batches: fabric writes that coalescing
	// eliminated.
	WritesSaved uint64
	// BytesEnqueued is the total payload bytes accepted.
	BytesEnqueued uint64
	// BytesMerged is the payload bytes that travelled in batches of two or
	// more records — bytes that actually shared a write.
	BytesMerged uint64
	// FlushBytes/FlushCount/FlushDeadline/FlushExplicit count flushes by
	// trigger: byte budget, record count, deadline timer, Flush/Drain.
	FlushBytes    uint64
	FlushCount    uint64
	FlushDeadline uint64
	FlushExplicit uint64
	// Failed is the number of batches that failed after retries; their
	// destinations surface through AsyncFailures for the fault monitor.
	Failed uint64
	// QueuePeak is the maximum number of records pending in the coalescer
	// (across all destinations) at any instant.
	QueuePeak uint64
}

// flush triggers, indexing pipelineCounters.flushes.
const (
	flushBytes = iota
	flushCount
	flushDeadline
	flushExplicit
	numFlushCauses
)

type pipelineCounters struct {
	enqueued      atomic.Uint64
	batches       atomic.Uint64
	bytesEnqueued atomic.Uint64
	bytesMerged   atomic.Uint64
	flushes       [numFlushCauses]atomic.Uint64
	failed        atomic.Uint64
	queuePeak     atomic.Uint64
}

func (c *pipelineCounters) notePeak(pending uint64) {
	for {
		cur := c.queuePeak.Load()
		if pending <= cur || c.queuePeak.CompareAndSwap(cur, pending) {
			return
		}
	}
}

func (c *pipelineCounters) snapshot() PipelineStats {
	enq, bat := c.enqueued.Load(), c.batches.Load()
	return PipelineStats{
		Enqueued:      enq,
		Batches:       bat,
		WritesSaved:   enq - bat,
		BytesEnqueued: c.bytesEnqueued.Load(),
		BytesMerged:   c.bytesMerged.Load(),
		FlushBytes:    c.flushes[flushBytes].Load(),
		FlushCount:    c.flushes[flushCount].Load(),
		FlushDeadline: c.flushes[flushDeadline].Load(),
		FlushExplicit: c.flushes[flushExplicit].Load(),
		Failed:        c.failed.Load(),
		QueuePeak:     c.queuePeak.Load(),
	}
}

// pendKey identifies one coalescing bucket: a destination rank and the
// registered segment key written there.
type pendKey struct {
	to  int
	key string
}

// pendingBatch accumulates records for one bucket between flushes. gen
// distinguishes this accumulation from earlier ones in the same bucket so a
// late deadline timer never flushes a successor batch early.
//
// Batches are pooled: recs/bufs keep their capacity across uses, and run
// is a closure bound once (at first allocation) that delivers whatever
// bucket the batch currently carries — so a flush in steady state submits
// a reused closure instead of allocating one.
type pendingBatch struct {
	recs  [][]byte   // record views, aliasing the bufs' storage
	bufs  []*sendBuf // refcounted owners of the records; released post-delivery
	bytes int
	gen   uint64

	// Delivery binding, set by flushLocked before the batch leaves p.mu.
	p   *pipeline
	to  int
	key string
	run func()
}

var batchPool sync.Pool // of *pendingBatch; New inlined in getBatch to avoid an init cycle through run

func getBatch(gen uint64) *pendingBatch {
	if v := batchPool.Get(); v != nil {
		b := v.(*pendingBatch)
		b.gen = gen
		return b
	}
	b := &pendingBatch{gen: gen}
	b.run = func() { b.p.deliverBatch(b) }
	return b
}

func putBatch(b *pendingBatch) {
	for i := range b.recs {
		b.recs[i] = nil
	}
	for i := range b.bufs {
		b.bufs[i] = nil
	}
	b.recs = b.recs[:0]
	b.bufs = b.bufs[:0]
	b.bytes = 0
	b.p = nil
	b.key = ""
	batchPool.Put(b)
}

// flushTimer is a reusable deadline timer for one bucket accumulation.
// Timers are never cancelled — a stale firing is harmless because
// flushIfGen checks the bucket generation — and a timer returns itself to
// the pipeline's free list when it fires, so steady-state bucket creation
// re-arms a pooled timer instead of allocating one (time.AfterFunc
// allocates a timer and a closure per call).
type flushTimer struct {
	p   *pipeline
	t   *time.Timer
	k   pendKey // guarded by p.mu, written before arming
	gen uint64
}

func (ft *flushTimer) fire() {
	p := ft.p
	p.mu.Lock()
	defer p.mu.Unlock()
	k, gen := ft.k, ft.gen
	p.timers = append(p.timers, ft)
	if p.closed {
		return
	}
	if b := p.pending[k]; b != nil && b.gen == gen {
		//maltlint:allow lockedscatter -- flushLocked only hands the batch to a worker channel; the fabric write runs on the pool goroutine after p.mu is released
		p.flushLocked(k, b, flushDeadline)
	}
}

// armTimerLocked schedules a deadline flush for a freshly created bucket.
// Caller holds p.mu.
func (p *pipeline) armTimerLocked(k pendKey, gen uint64) {
	var ft *flushTimer
	if n := len(p.timers); n > 0 {
		ft = p.timers[n-1]
		p.timers[n-1] = nil
		p.timers = p.timers[:n-1]
		ft.k, ft.gen = k, gen
		ft.t.Reset(p.cfg.MaxDelay)
		return
	}
	ft = &flushTimer{p: p, k: k, gen: gen}
	ft.t = time.AfterFunc(p.cfg.MaxDelay, ft.fire)
}

// pipeline is the per-node send coalescer plus deposit worker pool (a
// sticky par.Pool: destination rank is the submit key, so batches for one
// peer deliver in FIFO order while different peers proceed in parallel).
// Locking: mu guards pending and closed; drainMu guards inflight.
// mu may be taken before drainMu (flush increments inflight); workers take
// only drainMu. Pool submissions can block while mu is held — that is
// the back-pressure path, and it cannot deadlock because workers never take
// mu.
type pipeline struct {
	node *Node
	cfg  PipelineConfig

	mu          sync.Mutex
	pending     map[pendKey]*pendingBatch
	pendingRecs int           // records currently buffered, for QueuePeak
	genSeq      uint64        // batch generation allocator
	timers      []*flushTimer // free list of expired deadline timers
	closed      bool

	pool *par.Pool

	drainMu  sync.Mutex
	drained  *sync.Cond
	inflight int // batches flushed to workers but not yet delivered

	stats pipelineCounters
}

func newPipeline(n *Node, cfg PipelineConfig) *pipeline {
	p := &pipeline{
		node:    n,
		cfg:     cfg.withDefaults(),
		pending: make(map[pendKey]*pendingBatch),
	}
	p.drained = sync.NewCond(&p.drainMu)
	p.pool = par.New(p.cfg.Workers, p.cfg.QueueDepth)
	return p
}

// enqueue accepts one pooled record copy for several destinations. The
// buffer is shared across destinations (deposits only read it) with one
// reference per destination, so a fan-out of k costs one copy, not k.
// Returns false — without consuming any references — when the pipeline has
// been closed and the caller must deliver synchronously itself.
func (p *pipeline) enqueue(peers []int, key string, sb *sendBuf) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	rec := sb.b
	for _, to := range peers {
		k := pendKey{to: to, key: key}
		b := p.pending[k]
		if b == nil {
			p.genSeq++
			//maltlint:allow lockedscatter -- getBatch only binds the deliver closure; deliverBatch runs on a pool worker after p.mu is released
			b = getBatch(p.genSeq)
			p.pending[k] = b
			p.armTimerLocked(k, b.gen)
		}
		b.recs = append(b.recs, rec)
		b.bufs = append(b.bufs, sb)
		b.bytes += len(rec)
		p.pendingRecs++
		p.stats.enqueued.Add(1)
		p.stats.bytesEnqueued.Add(uint64(len(rec)))
		p.stats.notePeak(uint64(p.pendingRecs))
		switch {
		case b.bytes >= p.cfg.MaxBatchBytes:
			//maltlint:allow lockedscatter -- flushLocked only hands the batch to a worker channel; the fabric write runs on the pool goroutine after p.mu is released
			p.flushLocked(k, b, flushBytes)
		case len(b.recs) >= p.cfg.MaxBatchCount:
			//maltlint:allow lockedscatter -- flushLocked only hands the batch to a worker channel; the fabric write runs on the pool goroutine after p.mu is released
			p.flushLocked(k, b, flushCount)
		}
	}
	return true
}

// flushLocked hands one bucket's batch to its sticky worker. Caller holds
// p.mu. The channel send may block on a full worker queue (back-pressure).
func (p *pipeline) flushLocked(k pendKey, b *pendingBatch, cause int) {
	delete(p.pending, k)
	p.pendingRecs -= len(b.recs)
	p.stats.batches.Add(1)
	p.stats.flushes[cause].Add(1)
	if len(b.recs) >= 2 {
		p.stats.bytesMerged.Add(uint64(b.bytes))
	}
	p.drainMu.Lock()
	p.inflight++
	p.drainMu.Unlock()
	b.p, b.to, b.key = p, k.to, k.key
	p.pool.Submit(b.to, b.run)
}

// flushAllLocked flushes every non-empty bucket. Caller holds p.mu.
func (p *pipeline) flushAllLocked(cause int) {
	for k, b := range p.pending {
		p.flushLocked(k, b, cause)
	}
}

// flush posts all partial batches to the workers without waiting for
// delivery (the non-blocking barrier).
func (p *pipeline) flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		//maltlint:allow lockedscatter -- batches are handed to worker channels under p.mu by design; delivery happens on pool goroutines
		p.flushAllLocked(flushExplicit)
	}
}

// drain flushes all partial batches and blocks until every flushed batch
// has been delivered (or exhausted its retries). After drain returns, no
// update accepted before the call is still in flight.
func (p *pipeline) drain() {
	p.flush()
	p.drainMu.Lock()
	for p.inflight > 0 {
		p.drained.Wait()
	}
	p.drainMu.Unlock()
}

// stop drains and shuts the worker pool down. The pipeline is unusable
// afterwards; enqueue returns false.
func (p *pipeline) stop() {
	p.mu.Lock()
	p.closed = true
	//maltlint:allow lockedscatter -- closing flush hands remaining batches to worker channels; delivery happens on pool goroutines after p.mu is released
	p.flushAllLocked(flushExplicit)
	p.mu.Unlock()
	p.pool.Close()
}

// deliver posts one merged batch on a pool worker and settles the drain
// accounting.
func (p *pipeline) deliverBatch(b *pendingBatch) {
	if err := p.node.writeBatchWithRetry(b.to, b.key, b.recs); err != nil {
		p.stats.failed.Add(1)
		p.node.noteAsyncFailure(b.to)
	}
	// The fabric serialized every record before returning; drop this
	// batch's references and recycle the batch.
	for _, sb := range b.bufs {
		sb.release()
	}
	putBatch(b)
	p.drainMu.Lock()
	p.inflight--
	if p.inflight == 0 {
		p.drained.Broadcast()
	}
	p.drainMu.Unlock()
}

// EnablePipeline switches the node's scatter path to the coalescing
// pipeline: Scatter returns after enqueue, and merged batches are posted by
// background workers with the node's retry policy. Must be paired with
// DisablePipeline before the node is discarded. Enabling while already
// enabled replaces nothing — the first configuration stays.
func (n *Node) EnablePipeline(cfg PipelineConfig) {
	n.pipeMu.Lock()
	defer n.pipeMu.Unlock()
	if n.pipe != nil {
		return
	}
	n.pipe = newPipeline(n, cfg)
}

// DisablePipeline drains the coalescer, stops the worker pool, and returns
// the node to the plain write path.
func (n *Node) DisablePipeline() {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipe = nil
	n.pipeMu.Unlock()
	if p != nil {
		p.stop()
	}
}

// PipelineEnabled reports whether the coalescing pipeline is active.
func (n *Node) PipelineEnabled() bool {
	n.pipeMu.Lock()
	defer n.pipeMu.Unlock()
	return n.pipe != nil
}

// Flush posts all partially filled batches to the deposit workers without
// waiting for delivery. ASP trainers may call it at iteration edges to cap
// staleness without stalling.
func (n *Node) Flush() {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipeMu.Unlock()
	if p != nil {
		p.flush()
	}
}

// Drain blocks until every update accepted by the pipeline before the call
// has been delivered or has exhausted its retries (failures are reported
// via AsyncFailures). BSP and SSP call this before their barriers so
// consistency semantics are unchanged by batching. A no-op when the
// pipeline is disabled.
func (n *Node) Drain() error {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipeMu.Unlock()
	if p != nil {
		p.drain()
	}
	return nil
}

// PipelineOutstanding reports whether the pipeline currently holds work —
// buffered records or batches handed to workers but not yet delivered.
// Overlap accounting polls this at compute boundaries: "outstanding while
// computing" is communication hidden behind compute, "outstanding at the
// drain" is exposed. Always false when the pipeline is disabled (every
// write completed synchronously). Racy by nature — a deposit may complete
// between the two checks — which is fine for accounting.
func (n *Node) PipelineOutstanding() bool {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipeMu.Unlock()
	if p == nil {
		return false
	}
	p.mu.Lock()
	pending := p.pendingRecs
	p.mu.Unlock()
	if pending > 0 {
		return true
	}
	p.drainMu.Lock()
	inflight := p.inflight
	p.drainMu.Unlock()
	return inflight > 0
}

// PipelineStats returns a snapshot of the coalescer's counters; zero value
// when the pipeline was never enabled.
func (n *Node) PipelineStats() PipelineStats {
	n.pipeMu.Lock()
	p := n.pipe
	n.pipeMu.Unlock()
	if p == nil {
		return PipelineStats{}
	}
	return p.stats.snapshot()
}
