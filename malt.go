// Package malt is a Go implementation of MALT — distributed
// data-parallelism for existing machine-learning applications (Li, Kadav,
// Kruus, Ungureanu; EuroSys 2015).
//
// MALT turns a serial SGD loop into a data-parallel one with four calls
// (the paper's Table 1): CreateVector allocates a model-parameter or
// gradient vector shared over a one-sided remote-memory fabric; Scatter
// pushes it to the peers named by a dataflow graph; Gather locally folds
// whatever peer updates have arrived through a user-defined function; and
// Barrier provides optional bulk-synchrony. There is no parameter server
// and no master: every replica runs the same code, updates flow peer to
// peer, and a failed replica is simply dropped from the dataflow while the
// survivors retrain over its data.
//
// The paper's serial Algorithm 1 becomes its data-parallel Algorithm 2:
//
//	cfg := malt.Config{Ranks: 10, Dataflow: malt.All, Sync: malt.BSP}
//	res, err := malt.Run(cfg, func(ctx *malt.Context) error {
//	    g, err := ctx.CreateVector("grad", malt.Sparse, dim)
//	    if err != nil {
//	        return err
//	    }
//	    w := make([]float64, dim)
//	    lo, hi, _ := ctx.Shard(len(examples)) // load_data(f)
//	    for epoch := 0; epoch < maxEpochs; epoch++ {
//	        for _, batch := range batches(examples[lo:hi], cb) {
//	            computeGradient(g.Data(), w, batch)
//	            ctx.SetIteration(ctx.Iteration() + 1)
//	            ctx.Scatter(g)           // g.scatter(ALL)
//	            ctx.Advance(g)           // barrier under BSP
//	            ctx.Gather(g, malt.Average) // g.gather(AVG)
//	            apply(w, g.Data())
//	            ctx.Commit(g)
//	        }
//	    }
//	    return nil
//	})
//
// Substituted substrate: the original system runs over GASPI/InfiniBand
// RDMA on a physical cluster. This implementation reproduces the full
// stack in-process — a simulated one-sided RDMA fabric with a cost model
// and traffic accounting, dstorm segments with per-sender lock-free
// receive queues, the vector object library, BSP/ASP/SSP consistency, and
// fail-stop fault tolerance — so every experiment in the paper can be
// rerun on one machine. See DESIGN.md for the substitution map.
package malt

import (
	"io"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/ml/linalg"
	"malt/internal/vol"
)

// Config describes a MALT cluster: replica count, dataflow, consistency
// discipline and fabric parameters.
type Config = core.Config

// Cluster is an in-process MALT cluster of model replicas.
type Cluster = core.Cluster

// Context is one replica's handle on the cluster, passed to the training
// function; it provides the Table 1 API (CreateVector, Scatter, Gather,
// Barrier, Shard) plus consistency control and fault reporting.
type Context = core.Context

// Result aggregates a Run: per-rank errors and phase timings.
type Result = core.Result

// RankResult is one replica's outcome within a Result.
type RankResult = core.RankResult

// Vector is a shared model-parameter or gradient vector (dense or sparse
// wire format) created through Context.CreateVector.
type Vector = vol.Vector

// VectorOptions tunes queue depth, chunking and sparse capacity.
type VectorOptions = vol.Options

// GatherStats summarizes one gather: updates folded and their staleness.
type GatherStats = vol.GatherStats

// Fold is the input handed to a gather UDF.
type Fold = vol.Fold

// Update is one decoded peer update within a Fold.
type Update = vol.Update

// UDF is a gather user-defined function folding peer updates into the
// local vector.
type UDF = vol.UDF

// FabricConfig tunes the simulated interconnect (latency, bandwidth,
// imposed delay).
type FabricConfig = fabric.Config

// ChaosConfig seeds the fabric's transient-fault model: per-link drop
// probabilities, blackout windows and straggler jitter (Config.Fabric.Chaos,
// or Fabric.EnableChaos at runtime).
type ChaosConfig = fabric.ChaosConfig

// LinkFault is the transient-fault model of one directed link.
type LinkFault = fabric.LinkFault

// RetryPolicy bounds per-write retrying of transient fabric faults
// (Config.Retry).
type RetryPolicy = dstorm.RetryPolicy

// RetryStats counts a rank's transient-fault handling
// (Context.RetryStats).
type RetryStats = dstorm.RetryStats

// SuspicionConfig tunes the K-strikes failure detector (Config.Suspicion):
// a peer is health-checked only after Strikes independent failed-write
// reports within the Decay window.
type SuspicionConfig = fault.SuspicionConfig

// SuspicionStats counts a rank's failure-detector activity
// (Context.Monitor().SuspicionStats).
type SuspicionStats = fault.SuspicionStats

// ErrTransient marks a fabric operation dropped by the chaos layer: the
// packet is gone but the link is not. The runtime retries these under
// Config.Retry; only permanent failures reach the fault monitor.
var ErrTransient = fabric.ErrTransient

// ErrStaleEpoch marks an operation fenced by the membership-epoch check: it
// was issued by (or to) a zombie incarnation of a rank whose admission has
// been superseded. Permanent — the rank must rejoin (Cluster.Rejoin).
var ErrStaleEpoch = fabric.ErrStaleEpoch

// Snapshot is the recoverable state of one replica (model vector,
// iteration counter, optimizer scalars), published with
// Context.PublishState and adopted by a rejoining rank via Cluster.Rejoin /
// Context.Resume.
type Snapshot = core.Snapshot

// Membership is the optional elastic-membership extension of a transport:
// a monotonically-increasing epoch minted on every confirmed death and
// every join, with stale-epoch traffic fenced.
type Membership = fabric.Membership

// Vector wire representations.
const (
	// Dense sends the full float64 vector on every scatter.
	Dense = vol.Dense
	// Sparse sends only non-zero (index, value) pairs.
	Sparse = vol.Sparse
)

// Pre-built dataflow graphs (paper §3.4).
const (
	// All sends every update to every peer: O(N²) updates per round.
	All = dataflow.All
	// Halton sends each update to ~log₂N peers chosen by the Halton
	// sequence: O(N log N) updates per round with uniform dissemination.
	Halton = dataflow.Halton
	// Ring sends each update to the successor rank only.
	Ring = dataflow.Ring
	// MasterSlave stars all communication through rank 0.
	MasterSlave = dataflow.MasterSlave
)

// Consistency disciplines (paper §3.2).
const (
	// BSP is bulk-synchronous parallel training.
	BSP = consistency.BSP
	// ASP is fully asynchronous training.
	ASP = consistency.ASP
	// SSP is bounded-staleness training.
	SSP = consistency.SSP
)

// Gather user-defined functions.
var (
	// Average replaces the local value with the mean of it and all
	// incoming updates, folding in canonical rank order.
	Average = vol.Average
	// AverageIncoming averages only the incoming updates ("modelavg").
	AverageIncoming = vol.AverageIncoming
	// Sum adds every incoming update into the local value.
	Sum = vol.Sum
	// Replace overwrites the local value with the freshest incoming update
	// (distributed Hogwild).
	Replace = vol.Replace
	// ReplaceCoords overwrites only the coordinates each sparse update
	// shipped (per-row Hogwild for factor matrices).
	ReplaceCoords = vol.ReplaceCoords
)

// SparseUpdate is an explicit sparse payload for Vector.ScatterSparse:
// strictly increasing indices with their values.
type SparseUpdate = linalg.SparseVector

// TopK returns a sparse update holding the k largest-magnitude entries of
// data — gradient compression for Vector.ScatterSparse.
func TopK(data []float64, k int) *SparseUpdate { return vol.TopK(data, k) }

// TopKResidual is TopK with error feedback: the selected entries are
// zeroed in data so the caller can accumulate the dropped residual into
// the next update.
func TopKResidual(data []float64, k int) *SparseUpdate { return vol.TopKResidual(data, k) }

// AddVector is a fetch-and-add gradient accumulator (the paper's proposed
// hardware-averaging extension), created with Context.CreateAddVector:
// peer scatters merge into the accumulator at deposit time; Drain fetches
// the running average and resets it.
type AddVector = dstorm.AddSegment

// ParseDataflow converts a flag string ("all", "halton", "ring",
// "masterslave") to a dataflow kind.
func ParseDataflow(s string) (dataflow.Kind, error) { return dataflow.ParseKind(s) }

// CustomDataflow builds an arbitrary communication graph from an
// out-neighbour adjacency (adj[i] lists the ranks i scatters to), for
// Config.Graph. The graph must be connected; CreateVector enforces it.
func CustomDataflow(adj [][]int) (*dataflow.Graph, error) { return dataflow.FromAdjacency(adj) }

// ParseSync converts a flag string ("bsp", "asp", "ssp") to a consistency
// model.
func ParseSync(s string) (consistency.Model, error) { return consistency.ParseModel(s) }

// NewCluster builds a MALT cluster without running anything, for callers
// that need to inject failures or inspect fabric statistics around a Run.
func NewCluster(cfg Config) (*Cluster, error) {
	return core.NewCluster(cfg)
}

// Run builds a cluster and executes fn once per rank, each on its own
// replica goroutine, waiting for all of them. It is the one-call entry
// point; use NewCluster + Cluster.Run for more control.
func Run(cfg Config, fn func(ctx *Context) error) (*Result, error) {
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run(fn), nil
}

// Example is one labelled training instance (sparse features, ±1 label for
// classification).
type Example = data.Example

// Dataset is an in-memory labelled dataset with train and test splits.
type Dataset = data.Dataset

// LoadLibSVM reads a libsvm-format dataset ("label idx:val …"), the
// interchange format of the paper's SVM workloads. Pass dim 0 to infer the
// dimensionality from the data.
func LoadLibSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	return data.ReadLibSVM(r, name, dim)
}
