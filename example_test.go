package malt_test

import (
	"fmt"

	"malt"
)

// ExampleRun shows the paper's Algorithm 2: four replicas average a shared
// value under bulk-synchronous training.
func ExampleRun() {
	const ranks, dim = 4, 3
	res, err := malt.Run(malt.Config{Ranks: ranks, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			v, err := ctx.CreateVector("w", malt.Dense, dim)
			if err != nil {
				return err
			}
			// Each replica proposes its rank number; averaging converges
			// every replica to the same mean.
			v.Data()[0] = float64(ctx.Rank())
			//maltlint:allow iterskew -- doc example runs a single BSP round; there is no second iteration to advance to
			ctx.SetIteration(1)
			if err := ctx.Scatter(v); err != nil { // g.scatter(ALL)
				return err
			}
			if err := ctx.Advance(v); err != nil { // barrier under BSP
				return err
			}
			if _, err := ctx.Gather(v, malt.Average); err != nil { // g.gather(AVG)
				return err
			}
			if ctx.Rank() == 0 {
				fmt.Printf("averaged value: %.1f\n", v.Data()[0])
			}
			return ctx.Commit(v)
		})
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	// Output: averaged value: 1.5
}

// ExampleContext_Shard shows data loading: every replica takes its slice
// of the training set, and re-sharding after a failure is automatic.
func ExampleContext_Shard() {
	_, err := malt.Run(malt.Config{Ranks: 2}, func(ctx *malt.Context) error {
		lo, hi, err := ctx.Shard(100)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			fmt.Printf("rank 0 trains on [%d,%d)\n", lo, hi)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output: rank 0 trains on [0,50)
}
