package malt_test

import (
	"strings"
	"sync"
	"testing"

	"malt"
)

// TestRunQuickstart drives the public API end to end: parallel replicas
// train a toy shared vector with scatter/gather under BSP.
func TestRunQuickstart(t *testing.T) {
	const ranks, dim = 4, 8
	finals := make([][]float64, ranks)
	var mu sync.Mutex
	res, err := malt.Run(malt.Config{Ranks: ranks, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			v, err := ctx.CreateVector("w", malt.Dense, dim)
			if err != nil {
				return err
			}
			for it := uint64(1); it <= 10; it++ {
				// Each rank pulls the shared value toward its rank number;
				// averaging keeps all replicas in lock step.
				v.Data()[0] += float64(ctx.Rank())
				ctx.SetIteration(it)
				if err := ctx.Scatter(v); err != nil {
					return err
				}
				if err := ctx.Advance(v); err != nil {
					return err
				}
				if _, err := ctx.Gather(v, malt.Average); err != nil {
					return err
				}
				if err := ctx.Commit(v); err != nil {
					return err
				}
			}
			mu.Lock()
			finals[ctx.Rank()] = append([]float64(nil), v.Data()...)
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < ranks; r++ {
		if finals[r][0] != finals[0][0] {
			t.Fatalf("BSP all-to-all replicas diverged: %v vs %v", finals[r][0], finals[0][0])
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := malt.Run(malt.Config{Ranks: 0}, func(*malt.Context) error { return nil }); err == nil {
		t.Fatal("Ranks=0 should fail")
	}
}

func TestSparseVectorThroughPublicAPI(t *testing.T) {
	res, err := malt.Run(malt.Config{Ranks: 2, Dataflow: malt.All, Sync: malt.ASP},
		func(ctx *malt.Context) error {
			v, err := ctx.CreateVector("g", malt.Sparse, 1000)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				v.Data()[7] = 3.5
				//maltlint:allow iterskew -- single-round API test; there is no second iteration to advance to
				ctx.SetIteration(1)
				if err := ctx.Scatter(v); err != nil {
					return err
				}
			}
			if err := ctx.Barrier(v); err != nil {
				return err
			}
			if ctx.Rank() == 1 {
				if _, err := ctx.Gather(v, malt.Sum); err != nil {
					return err
				}
				if v.Data()[7] != 3.5 {
					t.Errorf("sparse update not delivered: %v", v.Data()[7])
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLibSVM(t *testing.T) {
	ds, err := malt.LoadLibSVM(strings.NewReader("1 1:0.5 2:1\n-1 3:2\n"), "toy", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 2 || ds.Dim != 3 {
		t.Fatalf("parsed %d examples, dim %d", len(ds.Train), ds.Dim)
	}
}

func TestNewClusterExposesFabric(t *testing.T) {
	c, err := malt.NewCluster(malt.Config{Ranks: 3, Dataflow: malt.Halton})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fabric().Ranks() != 3 {
		t.Fatal("fabric rank count wrong")
	}
	if c.Graph().Kind() != malt.Halton {
		t.Fatal("dataflow kind not applied")
	}
}

// TestAddVectorThroughPublicAPI exercises the fetch-and-add extension:
// gradient averaging performed at deposit time.
func TestAddVectorThroughPublicAPI(t *testing.T) {
	res, err := malt.Run(malt.Config{Ranks: 3, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			acc, err := ctx.CreateAddVector("grad", 2)
			if err != nil {
				return err
			}
			grad := []float64{float64(ctx.Rank() + 1), 0}
			if err := acc.AddLocal(grad); err != nil {
				return err
			}
			if _, err := acc.Scatter(grad, 1); err != nil {
				return err
			}
			if err := acc.Barrier(); err != nil {
				return err
			}
			avg := make([]float64, 2)
			n, err := acc.Drain(avg)
			if err != nil {
				return err
			}
			if n != 3 || avg[0] != 2 { // mean(1,2,3)
				t.Errorf("rank %d drained %d contributions, avg %v", ctx.Rank(), n, avg)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestModelParallelShards demonstrates the paper's §4 remark that model
// parallelism is expressible by sharding parameters over multiple MALT
// vectors: two vectors hold disjoint halves of a model, each with its own
// synchronization.
func TestModelParallelShards(t *testing.T) {
	const half = 8
	res, err := malt.Run(malt.Config{Ranks: 2, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			low, err := ctx.CreateVector("w/low", malt.Dense, half)
			if err != nil {
				return err
			}
			high, err := ctx.CreateVector("w/high", malt.Dense, half)
			if err != nil {
				return err
			}
			low.Data()[0] = float64(ctx.Rank() + 1)
			high.Data()[0] = 10 * float64(ctx.Rank()+1)
			//maltlint:allow iterskew -- single-round API test; there is no second iteration to advance to
			ctx.SetIteration(1)
			for _, v := range []*malt.Vector{low, high} {
				if err := ctx.Scatter(v); err != nil {
					return err
				}
			}
			if err := ctx.Advance(low); err != nil {
				return err
			}
			for _, v := range []*malt.Vector{low, high} {
				if _, err := ctx.Gather(v, malt.Average); err != nil {
					return err
				}
			}
			if low.Data()[0] != 1.5 || high.Data()[0] != 15 {
				t.Errorf("rank %d: shards = %v / %v", ctx.Rank(), low.Data()[0], high.Data()[0])
			}
			return ctx.Commit(low)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestCustomDataflowThroughPublicAPI drives a user-supplied communication
// graph (Table 1: scatter takes an arbitrary dataflow).
func TestCustomDataflowThroughPublicAPI(t *testing.T) {
	g, err := malt.CustomDataflow([][]int{{1}, {2}, {0}}) // 3-cycle
	if err != nil {
		t.Fatal(err)
	}
	res, err := malt.Run(malt.Config{Ranks: 3, Graph: g, Sync: malt.ASP},
		func(ctx *malt.Context) error {
			v, err := ctx.CreateVector("w", malt.Dense, 1)
			if err != nil {
				return err
			}
			v.Data()[0] = float64(ctx.Rank() + 1)
			//maltlint:allow iterskew -- single-round API test; there is no second iteration to advance to
			ctx.SetIteration(1)
			if err := ctx.Scatter(v); err != nil {
				return err
			}
			if err := ctx.Barrier(v); err != nil {
				return err
			}
			st, err := ctx.Gather(v, malt.Replace)
			if err != nil {
				return err
			}
			if st.Updates != 1 {
				t.Errorf("rank %d folded %d updates, want 1 (cycle)", ctx.Rank(), st.Updates)
			}
			// Predecessor in the cycle: rank (r+2)%3 sends to r.
			want := float64((ctx.Rank()+2)%3 + 1)
			if v.Data()[0] != want {
				t.Errorf("rank %d got %v, want %v", ctx.Rank(), v.Data()[0], want)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}
