module malt

go 1.22
