// Click-through-rate prediction with a data-parallel neural network — the
// paper's KDD12 workload (supervised semantic indexing, a three-layer
// fully-connected network).
//
// The "existing application" is a self-contained MLP with sparse inputs,
// tanh hidden layers and logistic loss. Because a data-parallel neural
// network must synchronize parameters at every layer, each layer lives in
// its own MALT vector with its own scatter/gather — exactly the structure
// §4 of the paper describes.
//
//	go run ./examples/neuralnet -ranks 8 -cb 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"malt"
)

var (
	flagRanks  = flag.Int("ranks", 8, "model replicas")
	flagCB     = flag.Int("cb", 200, "examples between layer synchronizations")
	flagEpochs = flag.Int("epochs", 4, "training epochs")
	flagDim    = flag.Int("dim", 5000, "sparse input dimensionality")
	flagH1     = flag.Int("h1", 64, "first hidden layer width")
	flagH2     = flag.Int("h2", 32, "second hidden layer width")
)

type example struct {
	idx []int32
	val []float64
	y   float64 // +1 click, -1 no click
}

// mlp is the user's network: three layers over flat parameter buffers, so
// each layer can live directly inside a MALT vector.
type mlp struct {
	dim, h1, h2 int
	l1, l2, l3  []float64 // weights then biases, per layer
	z1, a1, d1  []float64
	z2, a2, d2  []float64
}

func layerSizes(dim, h1, h2 int) [3]int {
	return [3]int{h1*dim + h1, h2*h1 + h2, h2 + 1}
}

func newMLP(dim, h1, h2 int, l1, l2, l3 []float64) *mlp {
	return &mlp{
		dim: dim, h1: h1, h2: h2,
		l1: l1, l2: l2, l3: l3,
		z1: make([]float64, h1), a1: make([]float64, h1), d1: make([]float64, h1),
		z2: make([]float64, h2), a2: make([]float64, h2), d2: make([]float64, h2),
	}
}

func (m *mlp) init(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fill := func(buf []float64, fanIn int) {
		s := 1 / math.Sqrt(float64(fanIn))
		for i := range buf {
			buf[i] = rng.NormFloat64() * s
		}
	}
	fill(m.l1[:m.h1*m.dim], m.dim)
	fill(m.l2[:m.h2*m.h1], m.h1)
	fill(m.l3[:m.h2], m.h2)
}

func (m *mlp) score(ex example) float64 {
	for h := 0; h < m.h1; h++ {
		z := m.l1[m.h1*m.dim+h] // bias
		row := m.l1[h*m.dim : (h+1)*m.dim]
		for i, ix := range ex.idx {
			z += row[ix] * ex.val[i]
		}
		m.z1[h] = z
		m.a1[h] = math.Tanh(z)
	}
	for h := 0; h < m.h2; h++ {
		z := m.l2[m.h2*m.h1+h]
		row := m.l2[h*m.h1 : (h+1)*m.h1]
		for j, a := range m.a1 {
			z += row[j] * a
		}
		m.z2[h] = z
		m.a2[h] = math.Tanh(z)
	}
	out := m.l3[m.h2]
	for j, a := range m.a2 {
		out += m.l3[j] * a
	}
	return out
}

// step is one backprop SGD update with logistic loss.
func (m *mlp) step(ex example, eta float64) {
	out := m.score(ex)
	z := -ex.y * out
	var dOut float64
	if z > 30 {
		dOut = -ex.y
	} else {
		e := math.Exp(z)
		dOut = -ex.y * e / (1 + e)
	}
	for h := 0; h < m.h2; h++ {
		m.d2[h] = dOut * m.l3[h] * (1 - m.a2[h]*m.a2[h])
	}
	for h := 0; h < m.h2; h++ {
		m.l3[h] -= eta * dOut * m.a2[h]
	}
	m.l3[m.h2] -= eta * dOut
	for j := 0; j < m.h1; j++ {
		var s float64
		for h := 0; h < m.h2; h++ {
			s += m.l2[h*m.h1+j] * m.d2[h]
		}
		m.d1[j] = s * (1 - m.a1[j]*m.a1[j])
	}
	for h := 0; h < m.h2; h++ {
		row := m.l2[h*m.h1 : (h+1)*m.h1]
		for j, a := range m.a1 {
			row[j] -= eta * m.d2[h] * a
		}
		m.l2[m.h2*m.h1+h] -= eta * m.d2[h]
	}
	for h := 0; h < m.h1; h++ {
		row := m.l1[h*m.dim : (h+1)*m.dim]
		for i, ix := range ex.idx {
			row[ix] -= eta * m.d1[h] * ex.val[i]
		}
		m.l1[m.h1*m.dim+h] -= eta * m.d1[h]
	}
}

func (m *mlp) auc(examples []example) float64 {
	type sc struct {
		s float64
		y float64
	}
	scores := make([]sc, len(examples))
	for i, ex := range examples {
		scores[i] = sc{m.score(ex), ex.y}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].s < scores[j].s })
	var rankSum float64
	var nPos, nNeg int
	for i, s := range scores {
		if s.y > 0 {
			nPos++
			rankSum += float64(i + 1)
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// makeClicks synthesizes KDD12-shaped click data from a nonlinear teacher.
func makeClicks(dim, n int, seed int64) []example {
	rng := rand.New(rand.NewSource(seed))
	const nnz = 30
	teacher := make([]float64, dim)
	for i := range teacher {
		teacher[i] = rng.NormFloat64()
	}
	out := make([]example, n)
	for i := range out {
		ex := example{}
		seen := map[int32]bool{}
		for len(ex.idx) < nnz {
			ix := int32(rng.Intn(dim))
			if !seen[ix] {
				seen[ix] = true
				ex.idx = append(ex.idx, ix)
			}
		}
		sort.Slice(ex.idx, func(a, b int) bool { return ex.idx[a] < ex.idx[b] })
		var s float64
		for _, ix := range ex.idx {
			v := math.Abs(rng.NormFloat64())
			ex.val = append(ex.val, v)
			s += math.Tanh(v * teacher[ix])
		}
		if s > 0.5 { // roughly 25% positive
			ex.y = 1
		} else {
			ex.y = -1
		}
		out[i] = ex
	}
	return out
}

func main() {
	flag.Parse()
	dim, h1, h2 := *flagDim, *flagH1, *flagH2
	all := makeClicks(dim, 24000, 1)
	train, test := all[:20000], all[20000:]
	sizes := layerSizes(dim, h1, h2)
	const eta = 0.1

	var finalAUC float64
	res, err := malt.Run(malt.Config{Ranks: *flagRanks, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			// One MALT vector per layer — per-layer dataflow control.
			var layers [3]*malt.Vector
			var bufs [3][]float64
			for i := range layers {
				v, err := ctx.CreateVector(fmt.Sprintf("layer%d", i), malt.Dense, sizes[i])
				if err != nil {
					return err
				}
				layers[i] = v
				bufs[i] = v.Data()
			}
			net := newMLP(dim, h1, h2, bufs[0], bufs[1], bufs[2])
			net.init(9) // identical initialization on every replica
			if err := ctx.Barrier(layers[0]); err != nil {
				return err
			}
			iter := uint64(0)
			for epoch := 0; epoch < *flagEpochs; epoch++ {
				lo, hi, err := ctx.Shard(len(train))
				if err != nil {
					return err
				}
				shard := train[lo:hi]
				nBatches := len(train) / len(ctx.Survivors()) / *flagCB
				for b := 0; b < nBatches; b++ {
					for _, ex := range shard[b**flagCB : (b+1)**flagCB] {
						net.step(ex, eta)
					}
					iter++
					ctx.SetIteration(iter)
					for _, v := range layers { // sync every layer
						if err := ctx.Scatter(v); err != nil {
							return err
						}
					}
					if err := ctx.Advance(layers[0]); err != nil {
						return err
					}
					for _, v := range layers {
						if _, err := ctx.Gather(v, malt.Average); err != nil {
							return err
						}
					}
					if err := ctx.Commit(layers[0]); err != nil {
						return err
					}
				}
			}
			if ctx.Rank() == 0 {
				finalAUC = net.auc(test)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d replicas x %d epochs in %v\n", *flagRanks, *flagEpochs, res.Elapsed)
	fmt.Printf("test AUC: %.4f\n", finalAUC)
}
