// Fault tolerance demo: training proceeds over a lossy network (every link
// drops a configurable fraction of writes, absorbed by bounded retries),
// then a replica crashes mid-training and the survivors recover — rebuild
// their send/receive lists, redistribute the dead rank's data, and converge
// anyway (paper §3.3 and Fig 14). The retry and suspicion counters printed
// at the end show the two fault classes being handled by different
// machinery: transient drops never reach the failure detector, while the
// crash is confirmed after repeated strikes.
//
//	go run ./examples/faulttolerance -ranks 6 -kill 3 -flaky 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"malt"
)

var (
	flagRanks  = flag.Int("ranks", 6, "model replicas")
	flagKill   = flag.Int("kill", 3, "rank to crash mid-run (-1 disables)")
	flagEpochs = flag.Int("epochs", 8, "training epochs")
	flagFlaky  = flag.Float64("flaky", 0.05, "per-link probability of dropping one write (0 disables)")
	flagSeed   = flag.Int64("seed", 42, "chaos injection seed")
)

const (
	dim = 500
	cb  = 50
)

type example struct {
	x []float64
	y float64
}

func makeData(n int, seed int64) []example {
	rng := rand.New(rand.NewSource(seed))
	teacher := make([]float64, dim)
	for i := range teacher {
		teacher[i] = rng.NormFloat64()
	}
	out := make([]example, n)
	for i := range out {
		x := make([]float64, dim)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * teacher[j]
		}
		y := 1.0
		if dot < 0 {
			y = -1
		}
		out[i] = example{x, y}
	}
	return out
}

func main() {
	flag.Parse()
	all := makeData(14000, 1)
	train, test := all[:12000], all[12000:]

	cluster, err := malt.NewCluster(malt.Config{
		Ranks:    *flagRanks,
		Dataflow: malt.All,
		Sync:     malt.ASP, // asynchronous: survivors never block on the dead
	})
	if err != nil {
		log.Fatal(err)
	}
	if *flagFlaky > 0 {
		// Every link drops this fraction of writes; the runtime's bounded
		// retries absorb them without involving the failure detector.
		cluster.Fabric().EnableChaos(malt.ChaosConfig{
			Seed:    *flagSeed,
			Default: malt.LinkFault{DropProb: *flagFlaky},
		})
		fmt.Printf("network: %.0f%% of writes on every link dropped transiently\n", *flagFlaky*100)
	}

	final := make([]float64, dim)
	res := cluster.Run(func(ctx *malt.Context) error {
		g, err := ctx.CreateVector("grad", malt.Dense, dim)
		if err != nil {
			return err
		}
		w := make([]float64, dim)
		iter := uint64(0)
		for epoch := 0; epoch < *flagEpochs; epoch++ {
			// Shard over the *surviving* ranks: after the crash the dead
			// rank's examples are redistributed automatically.
			lo, hi, err := ctx.Shard(len(train))
			if err != nil {
				return err
			}
			shard := train[lo:hi]
			if epoch == 0 || len(ctx.Survivors()) < ctx.Ranks() {
				fmt.Printf("rank %d: epoch %d trains on [%d,%d) (%d survivors)\n",
					ctx.Rank(), epoch, lo, hi, len(ctx.Survivors()))
			}
			for at := 0; at+cb <= len(shard); at += cb {
				iter++
				if ctx.Rank() == *flagKill && epoch == *flagEpochs/2 && at == 0 {
					fmt.Printf("rank %d: simulating machine crash\n", ctx.Rank())
					if err := cluster.Fabric().Kill(ctx.Rank()); err != nil {
						return err
					}
					return fmt.Errorf("rank %d crashed", ctx.Rank())
				}
				// Hinge-gradient over the batch.
				for i := range w {
					g.Data()[i] = 0
				}
				for _, ex := range shard[at : at+cb] {
					dot := 0.0
					for j, v := range ex.x {
						dot += v * w[j]
					}
					if 1-ex.y*dot > 0 {
						for j, v := range ex.x {
							g.Data()[j] -= ex.y * v / cb
						}
					}
				}
				ctx.SetIteration(iter)
				if err := ctx.Scatter(g); err != nil {
					return err
				}
				if _, err := ctx.Gather(g, malt.Average); err != nil {
					return err
				}
				for j := range w {
					w[j] -= 0.1 * g.Data()[j]
				}
			}
		}
		if ctx.Rank() == 0 {
			copy(final, w)
		}
		return nil
	})

	// The killed rank reports an error; every survivor must not.
	for _, rr := range res.PerRank {
		switch {
		case rr.Err != nil && rr.Rank == *flagKill:
			fmt.Printf("rank %d terminated as injected: %v\n", rr.Rank, rr.Err)
		case rr.Err != nil:
			log.Fatalf("survivor rank %d failed: %v", rr.Rank, rr.Err)
		}
	}

	correct := 0
	for _, ex := range test {
		dot := 0.0
		for j, v := range ex.x {
			dot += v * final[j]
		}
		if (dot >= 0) == (ex.y > 0) {
			correct++
		}
	}
	fmt.Printf("survivors: %v\n", cluster.Fabric().AliveRanks())
	if *flagFlaky > 0 {
		fmt.Printf("injected drops: %d\n", cluster.Fabric().Stats().InjectedDrops())
	}
	for _, r := range cluster.Fabric().AliveRanks() {
		ctx := cluster.Context(r)
		rs := ctx.RetryStats()
		ss := ctx.Monitor().SuspicionStats()
		fmt.Printf("rank %d: writes %d (%d retried, %d recovered, %d exhausted); "+
			"suspicion: %d reports, %d health checks, %d refuted, %d deaths confirmed\n",
			r, rs.Attempts, rs.Retries, rs.Recovered, rs.Exhausted,
			ss.Reports, ss.HealthChecks, ss.Refuted, ss.Confirmed)
	}
	fmt.Printf("test accuracy after recovery: %.3f\n", float64(correct)/float64(len(test)))
}
