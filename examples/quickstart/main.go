// Quickstart: the paper's Algorithm 2 in a complete program.
//
// A serial SGD loop for a linear classifier (Algorithm 1) becomes
// data-parallel with four MALT calls: CreateVector, Scatter, Gather and
// the BSP Advance/Commit barriers. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"malt"
)

const (
	dim    = 200
	nTrain = 8000
	ranks  = 4
	cb     = 100 // communication batch: examples between scatters
	epochs = 6
)

// example is one labelled instance of the user's "existing application".
type example struct {
	x []float64
	y float64
}

// makeData draws a linearly separable problem with 5% label noise.
func makeData(n int, seed int64) []example {
	rng := rand.New(rand.NewSource(seed))
	teacher := make([]float64, dim)
	for i := range teacher {
		teacher[i] = rng.NormFloat64()
	}
	out := make([]example, n)
	for i := range out {
		x := make([]float64, dim)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * teacher[j]
		}
		y := 1.0
		if dot < 0 {
			y = -1
		}
		if rng.Float64() < 0.05 {
			y = -y
		}
		out[i] = example{x: x, y: y}
	}
	return out
}

// gradient accumulates the averaged hinge-loss gradient of a batch — the
// unchanged heart of the serial application.
func gradient(g, w []float64, batch []example) {
	for i := range g {
		g[i] = 0
	}
	for _, ex := range batch {
		dot := 0.0
		for j, v := range ex.x {
			dot += v * w[j]
		}
		if 1-ex.y*dot > 0 { // margin violated
			for j, v := range ex.x {
				g[j] -= ex.y * v / float64(len(batch))
			}
		}
	}
}

func accuracy(w []float64, data []example) float64 {
	correct := 0
	for _, ex := range data {
		dot := 0.0
		for j, v := range ex.x {
			dot += v * w[j]
		}
		if (dot >= 0) == (ex.y > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

func main() {
	all := makeData(nTrain+2000, 1)
	train, test := all[:nTrain], all[nTrain:]

	final := make([]float64, dim)
	res, err := malt.Run(malt.Config{Ranks: ranks, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			g, err := ctx.CreateVector("grad", malt.Dense, dim)
			if err != nil {
				return err
			}
			w := make([]float64, dim)
			lo, hi, err := ctx.Shard(len(train)) // load_data: each rank takes its shard
			if err != nil {
				return err
			}
			shard := train[lo:hi]
			eta, iter := 0.2, uint64(0)
			for epoch := 0; epoch < epochs; epoch++ {
				for at := 0; at+cb <= len(shard); at += cb {
					gradient(g.Data(), w, shard[at:at+cb]) // unchanged serial code
					iter++
					ctx.SetIteration(iter)
					if err := ctx.Scatter(g); err != nil { // g.scatter(ALL)
						return err
					}
					if err := ctx.Advance(g); err != nil { // barrier (BSP)
						return err
					}
					if _, err := ctx.Gather(g, malt.Average); err != nil { // g.gather(AVG)
						return err
					}
					for j := range w { // w = w - eta*g
						w[j] -= eta * g.Data()[j]
					}
					if err := ctx.Commit(g); err != nil {
						return err
					}
				}
			}
			if ctx.Rank() == 0 {
				copy(final, w) // identical on all ranks under BSP all-to-all
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d replicas x %d epochs in %v\n", ranks, epochs, res.Elapsed)
	fmt.Printf("test accuracy: %.3f\n", accuracy(final, test))
}
