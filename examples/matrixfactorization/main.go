// Collaborative filtering with distributed matrix factorization — the
// paper's Netflix workload: Hogwild extended from a multi-core to a
// multi-node setting over MALT.
//
// The "existing application" is a plain SGD matrix factorizer (rank-8
// factors, fixed learning rate). MALT annotations ship only the factor
// rows each replica touched since its last scatter, and peers merge them
// with a lockless coordinate-wise replace — the distributed Hogwild
// gather.
//
//	go run ./examples/matrixfactorization -ranks 2 -cb 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"malt"
)

var (
	flagRanks  = flag.Int("ranks", 2, "model replicas")
	flagCB     = flag.Int("cb", 500, "ratings between scatters")
	flagEpochs = flag.Int("epochs", 8, "training epochs")
	flagUsers  = flag.Int("users", 2000, "users in the synthetic matrix")
	flagItems  = flag.Int("items", 500, "items in the synthetic matrix")
	flagRank   = flag.Int("rank", 8, "latent factors")
)

type rating struct {
	user, item int32
	score      float64
}

// makeRatings samples a low-rank matrix plus noise, Netflix-shaped.
func makeRatings(users, items, rank, n int, seed int64) []rating {
	rng := rand.New(rand.NewSource(seed))
	u := make([][]float64, users)
	v := make([][]float64, items)
	for i := range u {
		u[i] = randRow(rng, rank)
	}
	for i := range v {
		v[i] = randRow(rng, rank)
	}
	out := make([]rating, n)
	for i := range out {
		user := rng.Intn(users)
		item := rng.Intn(items)
		s := 3.0 + rng.NormFloat64()*0.3
		for k := 0; k < rank; k++ {
			s += u[user][k] * v[item][k]
		}
		out[i] = rating{user: int32(user), item: int32(item), score: clamp(s, 1, 5)}
	}
	return out
}

func randRow(rng *rand.Rand, rank int) []float64 {
	row := make([]float64, rank)
	for k := range row {
		row[k] = rng.NormFloat64() * 1.5 / math.Sqrt(float64(rank))
	}
	return row
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }

// sgdStep is the unchanged serial update for one observed rating.
func sgdStep(uRow, vRow []float64, score, eta, lambda float64) {
	e := score - 3
	for k := range uRow {
		e -= uRow[k] * vRow[k]
	}
	for k := range uRow {
		uk, vk := uRow[k], vRow[k]
		uRow[k] += eta * (e*vk - lambda*uk)
		vRow[k] += eta * (e*uk - lambda*vk)
	}
}

func rmse(u, v []float64, rank int, ratings []rating) float64 {
	sum := 0.0
	for _, r := range ratings {
		p := 3.0
		for k := 0; k < rank; k++ {
			p += u[int(r.user)*rank+k] * v[int(r.item)*rank+k]
		}
		d := p - r.score
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}

func main() {
	flag.Parse()
	users, items, rank := *flagUsers, *flagItems, *flagRank
	all := makeRatings(users, items, rank, 110000, 1)
	train, test := all[:100000], all[100000:]
	// The paper sorts by movie and splits across ranks so concurrent
	// Hogwild overwrites rarely touch the same item factors.
	sort.Slice(train, func(i, j int) bool { return train[i].item < train[j].item })

	const eta, lambda = 0.02, 0.05
	uDim, vDim := users*rank, items*rank

	var finalRMSE float64
	res, err := malt.Run(malt.Config{Ranks: *flagRanks, Dataflow: malt.All, Sync: malt.ASP, QueueLen: 8},
		func(ctx *malt.Context) error {
			uVec, err := ctx.CreateVectorOpts("U", malt.Sparse, uDim, malt.VectorOptions{MaxNNZ: uDim})
			if err != nil {
				return err
			}
			vVec, err := ctx.CreateVectorOpts("V", malt.Sparse, vDim, malt.VectorOptions{MaxNNZ: vDim})
			if err != nil {
				return err
			}
			u, v := uVec.Data(), vVec.Data()
			initFactors(u, v, rank)
			if err := ctx.Barrier(uVec); err != nil {
				return err
			}
			lo, hi, err := ctx.Shard(len(train))
			if err != nil {
				return err
			}
			shard := train[lo:hi]
			iter := uint64(0)
			touchedU := map[int32]bool{}
			touchedV := map[int32]bool{}
			for epoch := 0; epoch < *flagEpochs; epoch++ {
				for at := 0; at+*flagCB <= len(shard); at += *flagCB {
					for _, r := range shard[at : at+*flagCB] {
						sgdStep(u[int(r.user)*rank:int(r.user+1)*rank],
							v[int(r.item)*rank:int(r.item+1)*rank],
							r.score, eta, lambda)
						touchedU[r.user] = true
						touchedV[r.item] = true
					}
					iter++
					ctx.SetIteration(iter)
					if err := scatterTouched(ctx, uVec, touchedU, rank, iter); err != nil {
						return err
					}
					if err := scatterTouched(ctx, vVec, touchedV, rank, iter); err != nil {
						return err
					}
					clear(touchedU)
					clear(touchedV)
					// Hogwild merge: lockless coordinate overwrite.
					if _, err := ctx.Gather(uVec, malt.ReplaceCoords); err != nil {
						return err
					}
					if _, err := ctx.Gather(vVec, malt.ReplaceCoords); err != nil {
						return err
					}
				}
			}
			if ctx.Rank() == 0 {
				finalRMSE = rmse(u, v, rank, test)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d replicas x %d epochs in %v\n", *flagRanks, *flagEpochs, res.Elapsed)
	fmt.Printf("test RMSE: %.4f (observation noise floor 0.30)\n", finalRMSE)
}

func initFactors(u, v []float64, rank int) {
	rng := rand.New(rand.NewSource(3))
	for i := range u {
		u[i] = rng.NormFloat64() * 0.1
	}
	for i := range v {
		v[i] = rng.NormFloat64() * 0.1
	}
	_ = rank
}

// scatterTouched ships only the factor rows modified since the last
// scatter, as one sparse update.
func scatterTouched(ctx *malt.Context, vec *malt.Vector, touched map[int32]bool, rank int, iter uint64) error {
	if len(touched) == 0 {
		return nil
	}
	rows := make([]int32, 0, len(touched))
	for r := range touched {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	up := &malt.SparseUpdate{}
	data := vec.Data()
	for _, row := range rows {
		base := int(row) * rank
		for k := 0; k < rank; k++ {
			up.Append(int32(base+k), data[base+k])
		}
	}
	_, err := vec.ScatterSparse(up, iter)
	return err
}
