// Document classification with a data-parallel SVM — the paper's flagship
// workload (SVM-SGD over RCV1).
//
// The program contains a complete serial SVM-SGD (Bottou-style, sparse
// features, inverse-scaling learning rate) and the MALT-annotated parallel
// version of the same loop; it runs both and reports the loss each reaches
// and the speedup. Data is read from a libsvm file (-data) or generated
// RCV1-shaped when no file is given.
//
//	go run ./examples/svm -ranks 10 -cb 50 -dataflow halton -sync asp
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"malt"
)

var (
	flagData     = flag.String("data", "", "libsvm training file (synthetic RCV1-shaped when empty)")
	flagRanks    = flag.Int("ranks", 10, "model replicas")
	flagCB       = flag.Int("cb", 50, "communication batch size (examples)")
	flagEpochs   = flag.Int("epochs", 10, "training epochs")
	flagDataflow = flag.String("dataflow", "all", "dataflow graph: all|halton|ring")
	flagSync     = flag.String("sync", "bsp", "consistency: bsp|asp|ssp")
	flagLambda   = flag.Float64("lambda", 1e-5, "L2 regularization")
	flagEta      = flag.Float64("eta", 2, "initial learning rate")
)

// sparseExample is the application's own data structure: the point of MALT
// is that existing representations stay.
type sparseExample struct {
	idx []int32
	val []float64
	y   float64
}

func (e sparseExample) dot(w []float64) float64 {
	s := 0.0
	for i, ix := range e.idx {
		s += e.val[i] * w[ix]
	}
	return s
}

// serialSGD is Algorithm 1: the untouched existing application.
func serialSGD(w []float64, examples []sparseExample, lambda, eta0 float64, t *uint64) {
	for _, ex := range examples {
		eta := eta0 / (1 + eta0*lambda*float64(*t))
		*t++
		if shrink := 1 - eta*lambda; shrink != 1 {
			for i := range w {
				w[i] *= shrink
			}
		}
		if 1-ex.y*ex.dot(w) > 0 {
			for i, ix := range ex.idx {
				w[ix] += eta * ex.y * ex.val[i]
			}
		}
	}
}

func loss(w []float64, examples []sparseExample, lambda float64) float64 {
	sum := 0.0
	for _, ex := range examples {
		if m := 1 - ex.y*ex.dot(w); m > 0 {
			sum += m
		}
	}
	n2 := 0.0
	for _, v := range w {
		n2 += v * v
	}
	return sum/float64(len(examples)) + 0.5*lambda*n2
}

func main() {
	flag.Parse()
	dim, train, test := loadData()
	fmt.Printf("dataset: %d train / %d test examples, %d features\n", len(train), len(test), dim)

	// Baseline: the serial application as-is.
	wSerial := make([]float64, dim)
	var tSerial uint64
	start := time.Now()
	for e := 0; e < *flagEpochs; e++ {
		serialSGD(wSerial, train, *flagLambda, *flagEta, &tSerial)
	}
	serialTime := time.Since(start)
	fmt.Printf("serial SGD:   %8.2fs  loss %.4f\n", serialTime.Seconds(), loss(wSerial, test, *flagLambda))

	// The same loop, MALT-annotated.
	flow, err := malt.ParseDataflow(*flagDataflow)
	if err != nil {
		log.Fatal(err)
	}
	sync, err := malt.ParseSync(*flagSync)
	if err != nil {
		log.Fatal(err)
	}
	wFinal := make([]float64, dim)
	start = time.Now()
	res, err := malt.Run(malt.Config{Ranks: *flagRanks, Dataflow: flow, Sync: sync, ASPCutoff: 16},
		func(ctx *malt.Context) error {
			g, err := ctx.CreateVector("grad", malt.Dense, dim)
			if err != nil {
				return err
			}
			w := make([]float64, dim)
			var t uint64
			iter := uint64(0)
			for epoch := 0; epoch < *flagEpochs; epoch++ {
				lo, hi, err := ctx.Shard(len(train))
				if err != nil {
					return err
				}
				shard := train[lo:hi]
				nBatches := len(train) / len(ctx.Survivors()) / *flagCB
				for b := 0; b < nBatches; b++ {
					batch := shard[b**flagCB : (b+1)**flagCB]
					// Local step of the existing application, then mix
					// gradients with the peers.
					before := append([]float64(nil), w...)
					serialSGD(w, batch, *flagLambda, *flagEta, &t)
					for i := range before {
						g.Data()[i] = w[i] - before[i] // the model delta = "gradient"
					}
					iter++
					ctx.SetIteration(iter)
					if err := ctx.Scatter(g); err != nil {
						return err
					}
					if err := ctx.Advance(g); err != nil {
						return err
					}
					if _, err := ctx.Gather(g, malt.Average); err != nil {
						return err
					}
					for i := range w {
						w[i] = before[i] + g.Data()[i]
					}
					if err := ctx.Commit(g); err != nil {
						return err
					}
				}
			}
			if ctx.Rank() == 0 {
				copy(wFinal, w)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(start)
	fmt.Printf("MALT %s/%s: %8.2fs  loss %.4f  (%d ranks, cb=%d)\n",
		*flagDataflow, *flagSync, parTime.Seconds(), loss(wFinal, test, *flagLambda), *flagRanks, *flagCB)
	if parTime > 0 {
		fmt.Printf("wall-time ratio serial/parallel: %.2fx\n", serialTime.Seconds()/parTime.Seconds())
	}
}

// loadData reads the -data libsvm file or synthesizes an RCV1-shaped set.
func loadData() (dim int, train, test []sparseExample) {
	if *flagData != "" {
		f, err := os.Open(*flagData)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		ds, err := malt.LoadLibSVM(f, "user", 0)
		if err != nil {
			log.Fatal(err)
		}
		all := make([]sparseExample, len(ds.Train))
		for i, ex := range ds.Train {
			all[i] = sparseExample{idx: ex.Features.Idx, val: ex.Features.Val, y: ex.Label}
		}
		cut := len(all) * 9 / 10
		return ds.Dim, all[:cut], all[cut:]
	}
	// Synthetic RCV1-shaped data: 47k sparse features, teacher labels.
	const (
		d, nTrain, nTest, nnz = 47152, 8000, 2000, 75
	)
	rng := rand.New(rand.NewSource(7))
	teacher := make([]float64, d)
	for i := range teacher {
		teacher[i] = rng.NormFloat64()
	}
	gen := func(n int) []sparseExample {
		out := make([]sparseExample, n)
		for i := range out {
			seen := map[int32]bool{}
			ex := sparseExample{}
			for len(ex.idx) < nnz {
				ix := int32(rng.Intn(d))
				if !seen[ix] {
					seen[ix] = true
					ex.idx = append(ex.idx, ix)
				}
			}
			sort.Slice(ex.idx, func(a, b int) bool { return ex.idx[a] < ex.idx[b] })
			norm := 0.0
			for range ex.idx {
				ex.val = append(ex.val, rng.NormFloat64())
			}
			for _, v := range ex.val {
				norm += v * v
			}
			for j := range ex.val {
				ex.val[j] /= math.Sqrt(norm)
			}
			if ex.dot(teacher) >= 0 {
				ex.y = 1
			} else {
				ex.y = -1
			}
			if rng.Float64() < 0.05 {
				ex.y = -ex.y
			}
			out[i] = ex
		}
		return out
	}
	return d, gen(nTrain), gen(nTest)
}
