// Distributed k-means over MALT — one of the gradient-descent-family
// algorithms the paper names as targets (§2).
//
// The exchange pattern differs from SGD: replicas trade per-cluster
// sufficient statistics (coordinate sums and counts), which are *additive*,
// so the gather is a Sum instead of an Average, and after every round all
// replicas hold identical centroids — distributed Lloyd's is exactly
// equivalent to serial Lloyd's on the full data.
//
//	go run ./examples/kmeans -ranks 4 -k 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"malt"
)

var (
	flagRanks  = flag.Int("ranks", 4, "replicas")
	flagK      = flag.Int("k", 8, "clusters")
	flagDim    = flag.Int("dim", 32, "dimensions")
	flagN      = flag.Int("n", 40000, "points")
	flagRounds = flag.Int("rounds", 12, "Lloyd's rounds")
)

func main() {
	flag.Parse()
	k, dim, n := *flagK, *flagDim, *flagN
	points := makeMixture(k, dim, n, 1)

	statsLen := k*dim + k
	var finalInertia float64
	res, err := malt.Run(malt.Config{Ranks: *flagRanks, Dataflow: malt.All, Sync: malt.BSP},
		func(ctx *malt.Context) error {
			stats, err := ctx.CreateVector("stats", malt.Dense, statsLen)
			if err != nil {
				return err
			}
			centroids := initCentroids(points, k, dim, 7) // same seed everywhere
			lo, hi, err := ctx.Shard(len(points))
			if err != nil {
				return err
			}
			shard := points[lo:hi]
			for round := 0; round < *flagRounds; round++ {
				ctx.SetIteration(uint64(round + 1))
				accumulate(stats.Data(), shard, centroids, k, dim)
				if err := ctx.Scatter(stats); err != nil {
					return err
				}
				if err := ctx.Advance(stats); err != nil {
					return err
				}
				if _, err := ctx.Gather(stats, malt.Sum); err != nil { // additive stats
					return err
				}
				recompute(centroids, stats.Data(), k, dim)
				if err := ctx.Commit(stats); err != nil {
					return err
				}
			}
			if ctx.Rank() == 0 {
				finalInertia = inertia(points, centroids, k, dim)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d points into %d clusters on %d replicas in %v\n",
		n, k, *flagRanks, res.Elapsed)
	fmt.Printf("final inertia (mean squared distance): %.4f\n", finalInertia/float64(n))
}

func makeMixture(k, dim, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 2
		}
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.Intn(k)]
		p := make([]float64, dim)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*0.2
		}
		out[i] = p
	}
	return out
}

func initCentroids(points [][]float64, k, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(points))
	out := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		copy(out[c*dim:(c+1)*dim], points[perm[c]])
	}
	return out
}

func nearest(p, centroids []float64, k, dim int) (int, float64) {
	best, bestD := 0, -1.0
	for c := 0; c < k; c++ {
		var d float64
		row := centroids[c*dim : (c+1)*dim]
		for j, v := range p {
			diff := v - row[j]
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

func accumulate(stats []float64, points [][]float64, centroids []float64, k, dim int) {
	for _, p := range points {
		c, _ := nearest(p, centroids, k, dim)
		row := stats[c*dim : (c+1)*dim]
		for j, v := range p {
			row[j] += v
		}
		stats[k*dim+c]++
	}
}

func recompute(centroids, stats []float64, k, dim int) {
	for c := 0; c < k; c++ {
		count := stats[k*dim+c]
		if count == 0 {
			continue
		}
		for j := 0; j < dim; j++ {
			centroids[c*dim+j] = stats[c*dim+j] / count
		}
	}
	for i := range stats {
		stats[i] = 0
	}
}

func inertia(points [][]float64, centroids []float64, k, dim int) float64 {
	var total float64
	for _, p := range points {
		_, d := nearest(p, centroids, k, dim)
		total += d
	}
	return total
}
